"""NTT roundtrip / convolution tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.ntt import (
    coset_shift,
    evaluate_on_coset,
    interpolate_from_coset,
    intt,
    mul_polys_ntt,
    next_power_of_two,
    ntt,
)
from repro.field.prime_field import BN254_FR_MODULUS, fr_root_of_unity

R = BN254_FR_MODULUS
elems = st.integers(min_value=0, max_value=R - 1)


def schoolbook_mul(a, b):
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, x in enumerate(a):
        for j, y in enumerate(b):
            out[i + j] = (out[i + j] + x * y) % R
    return out


class TestNtt:
    @given(st.lists(elems, min_size=1, max_size=64))
    def test_roundtrip(self, values):
        n = next_power_of_two(len(values))
        padded = values + [0] * (n - len(values))
        assert intt(ntt(padded)) == padded

    def test_ntt_is_evaluation(self):
        coeffs = [3, 1, 4, 1]
        evals = ntt(coeffs)
        w = fr_root_of_unity(4)
        for i, e in enumerate(evals):
            x = pow(w, i, R)
            expected = sum(c * pow(x, k, R) for k, c in enumerate(coeffs)) % R
            assert e == expected

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            ntt([1, 2, 3])

    def test_length_one(self):
        assert ntt([5]) == [5]
        assert intt([5]) == [5]

    @given(
        st.lists(elems, min_size=1, max_size=16),
        st.lists(elems, min_size=1, max_size=16),
    )
    def test_poly_mul_matches_schoolbook(self, a, b):
        assert mul_polys_ntt(a, b) == schoolbook_mul(a, b)

    def test_poly_mul_empty(self):
        assert mul_polys_ntt([], [1, 2]) == []


class TestCoset:
    @given(st.lists(elems, min_size=1, max_size=32))
    def test_coset_roundtrip(self, coeffs):
        size = next_power_of_two(len(coeffs))
        evals = evaluate_on_coset(coeffs, size, 7)
        back = interpolate_from_coset(evals, 7)
        assert back[: len(coeffs)] == [c % R for c in coeffs]
        assert all(c == 0 for c in back[len(coeffs):])

    def test_coset_evaluation_points(self):
        coeffs = [2, 3]  # 2 + 3X
        size = 4
        g = 7
        evals = evaluate_on_coset(coeffs, size, g)
        w = fr_root_of_unity(size)
        for i, e in enumerate(evals):
            x = g * pow(w, i, R) % R
            assert e == (2 + 3 * x) % R

    def test_coset_shift_identity(self):
        assert coset_shift([1, 2, 3], 1) == [1, 2, 3]


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (1023, 1024)],
    )
    def test_values(self, n, expected):
        assert next_power_of_two(n) == expected
