"""NTT roundtrip / convolution tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import random

from repro.field.ntt import (
    NTTPlan,
    coset_shift,
    evaluate_on_coset,
    get_plan,
    interpolate_from_coset,
    intt,
    mul_polys_ntt,
    naive_evaluate_on_coset,
    naive_interpolate_from_coset,
    naive_ntt,
    next_power_of_two,
    ntt,
    ntt_many,
)
from repro.field.prime_field import BN254_FR_MODULUS, fr_root_of_unity

R = BN254_FR_MODULUS
elems = st.integers(min_value=0, max_value=R - 1)


def schoolbook_mul(a, b):
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, x in enumerate(a):
        for j, y in enumerate(b):
            out[i + j] = (out[i + j] + x * y) % R
    return out


class TestNtt:
    @given(st.lists(elems, min_size=1, max_size=64))
    def test_roundtrip(self, values):
        n = next_power_of_two(len(values))
        padded = values + [0] * (n - len(values))
        assert intt(ntt(padded)) == padded

    def test_ntt_is_evaluation(self):
        coeffs = [3, 1, 4, 1]
        evals = ntt(coeffs)
        w = fr_root_of_unity(4)
        for i, e in enumerate(evals):
            x = pow(w, i, R)
            expected = sum(c * pow(x, k, R) for k, c in enumerate(coeffs)) % R
            assert e == expected

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            ntt([1, 2, 3])

    def test_length_one(self):
        assert ntt([5]) == [5]
        assert intt([5]) == [5]

    @given(
        st.lists(elems, min_size=1, max_size=16),
        st.lists(elems, min_size=1, max_size=16),
    )
    def test_poly_mul_matches_schoolbook(self, a, b):
        assert mul_polys_ntt(a, b) == schoolbook_mul(a, b)

    def test_poly_mul_empty(self):
        assert mul_polys_ntt([], [1, 2]) == []


class TestCoset:
    @given(st.lists(elems, min_size=1, max_size=32))
    def test_coset_roundtrip(self, coeffs):
        size = next_power_of_two(len(coeffs))
        evals = evaluate_on_coset(coeffs, size, 7)
        back = interpolate_from_coset(evals, 7)
        assert back[: len(coeffs)] == [c % R for c in coeffs]
        assert all(c == 0 for c in back[len(coeffs):])

    def test_coset_evaluation_points(self):
        coeffs = [2, 3]  # 2 + 3X
        size = 4
        g = 7
        evals = evaluate_on_coset(coeffs, size, g)
        w = fr_root_of_unity(size)
        for i, e in enumerate(evals):
            x = g * pow(w, i, R) % R
            assert e == (2 + 3 * x) % R

    def test_coset_shift_identity(self):
        assert coset_shift([1, 2, 3], 1) == [1, 2, 3]


class TestPlannedAgainstNaive:
    """The cached-plan transforms must agree with the retained naive
    reference everywhere — random vectors across sizes 2^1..2^12."""

    @given(st.integers(min_value=1, max_value=12), st.integers())
    @settings(max_examples=20, deadline=None)
    def test_planned_matches_naive(self, log_n, seed):
        rng = random.Random(seed)
        n = 1 << log_n
        vec = [rng.randrange(R) for _ in range(n)]
        assert ntt(vec) == naive_ntt(vec)
        assert ntt(vec, inverse=True) == naive_ntt(vec, inverse=True)

    @given(st.integers(min_value=1, max_value=10), st.integers())
    @settings(max_examples=20, deadline=None)
    def test_fused_coset_matches_naive(self, log_n, seed):
        rng = random.Random(seed)
        n = 1 << log_n
        g = rng.randrange(2, R)
        coeffs = [rng.randrange(R) for _ in range(rng.randrange(1, n + 1))]
        evals = [rng.randrange(R) for _ in range(n)]
        assert evaluate_on_coset(coeffs, n, g) == naive_evaluate_on_coset(
            coeffs, n, g
        )
        assert interpolate_from_coset(evals, g) == naive_interpolate_from_coset(
            evals, g
        )

    def test_input_not_mutated_and_reduced(self):
        vec = [R + 3, -1, 5, 0]
        snapshot = list(vec)
        out = ntt(vec)
        assert vec == snapshot
        assert out == naive_ntt(vec)
        assert all(0 <= v < R for v in out)

    def test_plan_rejects_wrong_length(self):
        plan = get_plan(8)
        with pytest.raises(ValueError):
            plan.ntt([1, 2, 3, 4])
        with pytest.raises(ValueError):
            plan.coset_intt([1, 2, 3, 4], 7)
        with pytest.raises(ValueError):
            NTTPlan(12)

    def test_plan_cache_shared(self):
        assert get_plan(16) is get_plan(16)

    def test_ladder_cache_bounded(self):
        plan = NTTPlan(8)
        for g in range(2, 2 + 3 * NTTPlan._LADDER_LIMIT):
            plan.coset_ladder(g)
        assert len(plan._ladders) == NTTPlan._LADDER_LIMIT
        # Evicted generators still recompute correctly.
        coeffs = list(range(1, 9))
        assert plan.coset_ntt(coeffs, 2) == naive_evaluate_on_coset(
            coeffs, 8, 2
        )


class TestNttMany:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=5),
        st.integers(),
    )
    @settings(max_examples=15, deadline=None)
    def test_batched_matches_single(self, log_n, rows, seed):
        rng = random.Random(seed)
        n = 1 << log_n
        vecs = [[rng.randrange(R) for _ in range(n)] for _ in range(rows)]
        assert ntt_many(vecs) == [ntt(v) for v in vecs]
        assert ntt_many(vecs, inverse=True) == [intt(v) for v in vecs]
        plan = get_plan(n)
        assert plan.coset_ntt_many(vecs, 7) == [
            evaluate_on_coset(v, n, 7) for v in vecs
        ]

    def test_empty(self):
        assert ntt_many([]) == []

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            ntt_many([[1, 2, 3]])


class TestCosetSizeValidation:
    def test_undersized_domain_rejected(self):
        # Regression: ``size`` smaller than the polynomial used to slip
        # through as a silently wrong-length transform.
        with pytest.raises(ValueError):
            evaluate_on_coset([1, 2, 3, 4, 5], 4, 7)

    def test_non_power_of_two_domain_rejected(self):
        with pytest.raises(ValueError):
            evaluate_on_coset([1, 2], 3, 7)

    def test_exact_fit_still_works(self):
        coeffs = [1, 2, 3, 4]
        assert evaluate_on_coset(coeffs, 4, 7) == naive_evaluate_on_coset(
            coeffs, 4, 7
        )


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (1023, 1024)],
    )
    def test_values(self, n, expected):
        assert next_power_of_two(n) == expected
