"""NN modules: layers, token mixers, transformer models, datasets,
training, and quantisation."""

import numpy as np
import pytest

from repro.nn import (
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    PatchEmbed,
    Tensor,
    TextTransformer,
    Transformer,
    VisionTransformer,
    evaluate,
    int_matmul_rescale,
    make_mixer,
    make_nlp_task,
    make_patch_retrieval_images,
    make_vision_dataset,
    quantize,
    requantize,
    train_model,
    uniform_plan,
)
from repro.nn.attention import (
    LinearMixer,
    PoolingMixer,
    ScalingAttention,
    SoftmaxAttention,
)
from repro.nn.datasets import NLP_TASKS
from repro.nn.transformer import (
    PAPER_CONFIGS,
    bert_small_config,
    metaformer_imagenet_config,
    vit_cifar_config,
    vit_tiny_imagenet_config,
)


@pytest.fixture
def nprng():
    return np.random.default_rng(0)


class TestLayers:
    def test_linear_shapes(self, nprng):
        lin = Linear(4, 6, nprng)
        out = lin(Tensor(nprng.normal(size=(2, 3, 4))))
        assert out.shape == (2, 3, 6)

    def test_layernorm_affine(self, nprng):
        ln = LayerNorm(8)
        ln.gamma.data[:] = 2.0
        ln.beta.data[:] = 1.0
        out = ln(Tensor(nprng.normal(size=(3, 8))))
        assert np.allclose(out.data.mean(axis=-1), 1.0, atol=1e-6)

    def test_mlp_roundtrip(self, nprng):
        mlp = MLP(4, 8, nprng)
        out = mlp(Tensor(nprng.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 4)

    def test_embedding_lookup(self, nprng):
        emb = Embedding(10, 6, nprng)
        ids = np.array([[1, 2], [3, 4]])
        out = emb(ids)
        assert out.shape == (2, 2, 6)
        assert np.allclose(out.data[0, 0], emb.table.data[1])

    def test_patch_embed_grid(self, nprng):
        pe = PatchEmbed(16, 4, 8, nprng)
        assert pe.num_tokens == 16
        images = nprng.normal(size=(2, 16, 16))
        patches = pe.patches(images)
        assert patches.shape == (2, 16, 16)
        # A patch is the contiguous 4x4 block.
        assert np.allclose(patches[0, 0], images[0, :4, :4].reshape(-1))
        assert pe(images).shape == (2, 16, 8)

    def test_patch_embed_divisibility(self, nprng):
        with pytest.raises(ValueError):
            PatchEmbed(10, 4, 8, nprng)

    def test_parameters_collected(self, nprng):
        model = Transformer(8, 2, 4, 3, ["softmax", "pooling"], nprng)
        names = len(model.parameters())
        # head + norm(2) + per-block params; pooling block has no mixer
        # params but still norms+mlp.
        assert names > 10


class TestMixers:
    @pytest.mark.parametrize("name", ["softmax", "scaling", "pooling",
                                      "linear"])
    def test_forward_shapes(self, name, nprng):
        mixer = make_mixer(name, 8, 2, 6, nprng)
        out = mixer(Tensor(nprng.normal(size=(2, 6, 8))))
        assert out.shape == (2, 6, 8)

    def test_unknown_mixer(self, nprng):
        with pytest.raises(ValueError):
            make_mixer("fft", 8, 2, 6, nprng)

    def test_heads_divide_dim(self, nprng):
        with pytest.raises(ValueError):
            SoftmaxAttention(9, 2, nprng)

    def test_softmax_attention_attends(self, nprng):
        """Output of a token must depend on other tokens' content."""
        att = SoftmaxAttention(8, 2, nprng)
        x = nprng.normal(size=(1, 4, 8))
        base = att(Tensor(x)).data[0, 0].copy()
        x2 = x.copy()
        x2[0, 3] += 5.0  # perturb a *different* token
        moved = att(Tensor(x2)).data[0, 0]
        assert not np.allclose(base, moved)

    def test_pooling_plus_residual_is_mean(self, nprng):
        mixer = PoolingMixer(8, nprng)
        x = nprng.normal(size=(1, 4, 8))
        out = mixer(Tensor(x)).data + x  # residual add
        assert np.allclose(out, np.broadcast_to(x.mean(axis=1, keepdims=True), x.shape))

    @pytest.mark.parametrize("name,heads", [("softmax", 2), ("scaling", 2)])
    def test_proving_profiles_shapes(self, name, heads, nprng):
        mixer = make_mixer(name, 8, heads, 6, nprng)
        shapes = mixer.proving_profile(6, 8)
        assert shapes[0] == (6, 8, 24)  # qkv
        assert shapes[-1] == (6, 8, 8)  # proj
        assert len(shapes) == 2 + 2 * heads

    def test_linear_mixer_profile(self, nprng):
        mixer = LinearMixer(8, 6, nprng)
        assert mixer.proving_profile(6, 8) == [(8, 6, 6)]

    def test_softmax_rows_flag(self, nprng):
        assert SoftmaxAttention(8, 2, nprng).softmax_rows
        assert not ScalingAttention(8, 2, nprng).softmax_rows


class TestModels:
    def test_vision_forward(self, nprng):
        model = VisionTransformer(
            16, 4, 16, 2, 4, uniform_plan("softmax", 2), nprng
        )
        logits = model(nprng.normal(size=(3, 16, 16)))
        assert logits.shape == (3, 4)

    def test_text_forward(self, nprng):
        model = TextTransformer(
            12, 8, 16, 2, 3, uniform_plan("scaling", 2), nprng
        )
        logits = model(nprng.integers(0, 12, size=(3, 8)))
        assert logits.shape == (3, 3)

    def test_mixed_plan(self, nprng):
        model = VisionTransformer(
            16, 4, 16, 2, 4, ["pooling", "softmax"], nprng
        )
        assert model.encoder.blocks[0].mixer_name == "pooling"
        assert model.encoder.blocks[1].mixer_name == "softmax"

    def test_uniform_plan_validation(self):
        with pytest.raises(ValueError):
            uniform_plan("bogus", 3)


class TestPaperConfigs:
    def test_configs_match_paper(self):
        c = vit_cifar_config()
        assert c.total_layers == 7 and c.stages[0].dim == 256
        assert c.stages[0].tokens == 64  # 32/4 squared
        t = vit_tiny_imagenet_config()
        assert t.total_layers == 9 and t.stages[0].heads == 12
        m = metaformer_imagenet_config()
        assert [s.dim for s in m.stages] == [64, 128, 320, 512]
        assert m.stages[0].tokens == 3136  # (224/4)^2
        b = bert_small_config()
        assert b.total_layers == 4 and b.stages[0].dim == 256

    def test_layer_specs_expansion(self):
        m = metaformer_imagenet_config()
        specs = m.layer_specs()
        assert len(specs) == 12
        assert specs[0].dim == 64 and specs[-1].dim == 512

    def test_registry(self):
        assert set(PAPER_CONFIGS) == {
            "cifar10", "tiny-imagenet", "imagenet", "bert",
        }


class TestDatasets:
    def test_vision_shapes_and_labels(self):
        data = make_patch_retrieval_images(40, num_classes=4, seed=1)
        assert data.train_x.shape[1:] == (16, 16)
        assert set(np.unique(data.train_y)) <= set(range(4))
        assert len(data.test_x) == 10

    def test_vision_presets(self):
        for preset in ("cifar10", "tiny-imagenet", "imagenet"):
            data = make_vision_dataset(preset, 20, seed=2)
            assert len(data.train_x) + len(data.test_x) == 20

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            make_vision_dataset("mnist", 10)

    def test_too_many_distractors(self):
        with pytest.raises(ValueError):
            make_patch_retrieval_images(5, num_distractors=100)

    @pytest.mark.parametrize("task", NLP_TASKS)
    def test_nlp_tasks(self, task):
        data, classes = make_nlp_task(task, 60, seed=3)
        assert data.train_x.dtype == np.int64
        assert set(np.unique(data.train_y)) <= set(range(classes))
        # Both classes represented.
        assert len(np.unique(data.train_y)) == classes

    def test_unknown_nlp_task(self):
        with pytest.raises(ValueError):
            make_nlp_task("cola", 10)

    def test_dataset_determinism(self):
        d1 = make_vision_dataset("cifar10", 20, seed=7)
        d2 = make_vision_dataset("cifar10", 20, seed=7)
        assert np.array_equal(d1.train_x, d2.train_x)


class TestTraining:
    def test_loss_decreases(self):
        data = make_vision_dataset("cifar10", 120, seed=4)
        rng = np.random.default_rng(0)
        model = VisionTransformer(
            16, 4, 16, 2, 8, uniform_plan("softmax", 1), rng
        )
        res = train_model(model, data, epochs=3, lr=0.05)
        assert res.losses[-1] < res.losses[0]
        assert 0.0 <= res.test_acc <= 1.0

    def test_evaluate_bounds(self):
        data = make_vision_dataset("cifar10", 40, seed=5)
        rng = np.random.default_rng(0)
        model = VisionTransformer(
            16, 4, 8, 2, 8, uniform_plan("pooling", 1), rng
        )
        acc = evaluate(model, data.test_x, data.test_y)
        assert 0.0 <= acc <= 1.0


class TestQuantize:
    def test_roundtrip_error_bounded(self, nprng):
        x = nprng.normal(size=(5, 5))
        q = quantize(x, 8)
        assert np.max(np.abs(q.dequantize() - x)) <= 2 ** -8

    def test_clipping(self):
        q = quantize(np.array([1e9]), 8, clip_bits=16)
        assert q.values[0] == (1 << 16) - 1

    def test_requantize_floor_semantics(self):
        v = np.array([-5, 5, -16, 16], dtype=np.int64)
        assert list(requantize(v, 2)) == [-2, 1, -4, 4]

    def test_int_matmul_rescale(self):
        f = 4
        x = quantize(np.array([[1.0, 2.0]]), f).values
        w = quantize(np.array([[0.5], [0.25]]), f).values
        out = int_matmul_rescale(x, w, f)
        assert abs(out[0, 0] / (1 << f) - 1.0) < 0.1
