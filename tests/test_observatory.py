"""Benchmark observatory: run store, declarative scans, history gate.

Covers the contracts the nightly CI leans on: records round-trip through
the store byte-for-byte, incompatible schemas are rejected rather than
silently misread, the summary cache invalidates on every append,
concurrent writers never clobber each other, scans visit a deterministic
point order with correctly bracketed hooks, and the ``--history`` trend
gate catches throughput drops / counter growth against synthetic stored
runs.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.bench.observatory import cli as obs_cli
from repro.bench.observatory import (
    DEFAULT_WINDOW,
    HISTORY_SCAN,
    HISTORY_SUITE,
    MIN_RUNS,
    Dimension,
    ResultStore,
    RunRecord,
    ScanSpec,
    SchemaVersionError,
    append_history,
    history_gate,
    load_record,
    point_key,
)
from repro.bench.observatory.suites import PAPER_SUITE

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")


# -- result store ------------------------------------------------------------


def test_store_round_trip(tmp_path):
    store = ResultStore(str(tmp_path))
    point = {"strategy": "crpc_psq", "backend": "groth16", "d": 16}
    metrics = {"prove_s": 1.25, "proof_bytes": 192.0}
    rec = store.append("paper", "table2", point, metrics)

    assert rec.path is not None and os.path.exists(rec.path)
    loaded = load_record(rec.path)
    assert loaded.suite == "paper" and loaded.scan == "table2"
    assert loaded.point == point
    assert loaded.metrics == metrics
    assert loaded.key() == point_key(point)
    assert loaded.meta["host"]["cpu_count"] == os.cpu_count()
    assert loaded.created > 0

    (found,) = store.records(suite="paper", scan="table2")
    assert found.metrics == metrics
    latest = store.latest("paper", "table2")
    assert latest[f"table2/{point_key(point)}"].metrics == metrics


def test_store_latest_prefers_newest_and_series_is_chronological(tmp_path):
    store = ResultStore(str(tmp_path))
    point = {"size": 8}
    for value in (1.0, 2.0, 3.0):
        store.append("s", "scan", point, {"ops": value},
                     meta={"created": value})
    latest = store.latest("s", "scan")
    assert latest[f"scan/{point_key(point)}"].metrics["ops"] == 3.0
    assert store.series("s", "scan", point_key(point), "ops") == [1.0, 2.0, 3.0]


def test_store_rejects_wrong_schema(tmp_path):
    store = ResultStore(str(tmp_path))
    store.append("s", "scan", {"x": 1}, {"ops": 1.0})
    bad = tmp_path / "r-9999999999999-1-deadbeef.json"
    bad.write_text(json.dumps({
        "schema": 99, "suite": "s", "scan": "scan",
        "point": {"x": 2}, "metrics": {"ops": 2.0}, "meta": {},
    }))

    with pytest.raises(SchemaVersionError):
        load_record(str(bad))

    # Tolerant read skips it (and reports it); strict read raises.
    recs = store.records(suite="s")
    assert len(recs) == 1 and recs[0].point == {"x": 1}
    assert len(store.skipped) == 1 and "schema" in store.skipped[0]
    with pytest.raises(SchemaVersionError):
        store.records(suite="s", strict=True)


def test_store_skips_corrupt_record(tmp_path):
    store = ResultStore(str(tmp_path))
    (tmp_path / "r-0000000000001-1-junk.json").write_text("{not json")
    assert store.records() == []
    assert len(store.skipped) == 1


def test_summary_cache_invalidated_by_append(tmp_path):
    store = ResultStore(str(tmp_path))
    store.append("s", "scan", {"x": 1}, {"ops": 10.0})
    first = store.summary()
    assert first["record_count"] == 1
    cache_path = tmp_path / "summary-cache.json"
    assert cache_path.exists()

    # Unchanged store: served from cache (identical fingerprint).
    again = store.summary()
    assert again["fingerprint"] == first["fingerprint"]

    # Append invalidates the fingerprint; aggregates pick up the new run.
    store.append("s", "scan", {"x": 1}, {"ops": 30.0})
    rebuilt = store.summary()
    assert rebuilt["fingerprint"] != first["fingerprint"]
    assert rebuilt["record_count"] == 2
    agg = rebuilt["aggregates"][f"s/scan/{point_key({'x': 1})}/ops"]
    assert agg["count"] == 2
    assert agg["median"] == 20.0
    assert agg["best"] == 30.0

    # A stale or corrupt cache file is rebuilt, not trusted.
    cache_path.write_text("{broken")
    assert store.summary()["record_count"] == 2


def test_concurrent_appends_from_separate_processes(tmp_path):
    script = (
        "import sys\n"
        "from repro.bench.observatory import ResultStore\n"
        "store = ResultStore(sys.argv[1])\n"
        "for i in range(8):\n"
        "    store.append('s', 'scan', {'writer': sys.argv[2], 'i': i},\n"
        "                 {'ops': float(i)})\n"
    )
    env = {**os.environ, "PYTHONPATH": SRC_DIR}
    procs = [
        subprocess.Popen([sys.executable, "-c", script, str(tmp_path), w],
                         env=env)
        for w in ("a", "b")
    ]
    for p in procs:
        assert p.wait(timeout=60) == 0

    store = ResultStore(str(tmp_path))
    recs = store.records(strict=True)
    assert len(recs) == 16
    assert len({r.path for r in recs}) == 16
    by_writer = {w: sorted(r.point["i"] for r in recs
                           if r.point["writer"] == w) for w in ("a", "b")}
    assert by_writer == {"a": list(range(8)), "b": list(range(8))}


# -- declarative scans -------------------------------------------------------


def test_scan_points_are_deterministic_row_major():
    spec = ScanSpec(
        "demo",
        [Dimension("a", (1, 2)), Dimension("b", ("x", "y", "z"))],
        lambda p, ctx: {},
    )
    pts = list(spec.points())
    assert pts == [
        {"a": 1, "b": "x"}, {"a": 1, "b": "y"}, {"a": 1, "b": "z"},
        {"a": 2, "b": "x"}, {"a": 2, "b": "y"}, {"a": 2, "b": "z"},
    ]
    assert list(spec.points()) == pts


def test_dimension_and_spec_validation():
    with pytest.raises(ValueError):
        Dimension("empty", ())
    with pytest.raises(ValueError):
        ScanSpec("dup", [Dimension("a", (1,)), Dimension("a", (2,))],
                 lambda p, ctx: {})


def test_scan_run_hooks_skip_and_store(tmp_path):
    calls = []
    store = ResultStore(str(tmp_path))
    spec = ScanSpec(
        "demo",
        [Dimension("n", (1, 2, 3))],
        lambda p, ctx: (calls.append(("run", p["n"])),
                        {"out": float(p["n"] * ctx["scale"])})[1],
        setup=lambda ctx: (ctx.__setitem__("scale", 10),
                           calls.append(("setup", None)))[1],
        cleanup=lambda ctx: calls.append(("cleanup", None)),
        point_setup=lambda p, ctx: calls.append(("point_setup", p["n"])),
        point_cleanup=lambda p, ctx: calls.append(("point_cleanup", p["n"])),
        skip=lambda p: "even" if p["n"] % 2 == 0 else None,
    )
    outcome = spec.run(store, suite="s")

    assert calls == [
        ("setup", None),
        ("point_setup", 1), ("run", 1), ("point_cleanup", 1),
        ("point_setup", 3), ("run", 3), ("point_cleanup", 3),
        ("cleanup", None),
    ]
    assert [(p["n"], reason) for p, reason in outcome.skipped] == [(2, "even")]
    assert [r.metrics["out"] for r in outcome.records] == [10.0, 30.0]
    assert len(store.records(suite="s", scan="demo")) == 2
    assert outcome.elapsed_s >= 0


def test_scan_cleanup_runs_on_runner_error(tmp_path):
    calls = []

    def runner(p, ctx):
        raise RuntimeError("boom")

    spec = ScanSpec(
        "demo", [Dimension("n", (1,))], runner,
        cleanup=lambda ctx: calls.append("cleanup"),
        point_cleanup=lambda p, ctx: calls.append("point_cleanup"),
    )
    with pytest.raises(RuntimeError):
        spec.run(ResultStore(str(tmp_path)))
    assert calls == ["point_cleanup", "cleanup"]


def test_scan_runner_none_records_nothing(tmp_path):
    store = ResultStore(str(tmp_path))
    spec = ScanSpec("demo", [Dimension("n", (1, 2))],
                    lambda p, ctx: None)
    outcome = spec.run(store)
    assert outcome.records == []
    assert store.records() == []


# -- history gate (check_regression --history semantics) ---------------------


def _fresh(fast=500.0, connects=1.0):
    """A synthetic bench_prover_hotpaths-shaped result."""
    return {
        "meta": {"cpu_count": 4},
        "msm": {"256": {"fast_ops_per_sec": fast}},
        "service": {"b4": {"remote_connects_per_proof": connects}},
    }


def _seed_history(store, values, factor=1.0):
    for v in values:
        append_history(store, _fresh(fast=v), factor)


def test_history_append_normalizes_throughput_not_counters(tmp_path):
    store = ResultStore(str(tmp_path))
    rec = append_history(store, _fresh(fast=1000.0, connects=2.0), 2.0)
    assert rec.suite == HISTORY_SUITE and rec.scan == HISTORY_SCAN
    # Throughput halves under a 2x machine factor; counters stay raw.
    assert rec.metrics["msm.256.fast_ops_per_sec"] == 500.0
    assert rec.metrics["service.b4.remote_connects_per_proof"] == 2.0
    assert rec.meta["machine_factor"] == 2.0
    assert rec.meta["bench_meta"] == {"cpu_count": 4}


def test_history_gate_needs_min_runs(tmp_path):
    store = ResultStore(str(tmp_path))
    _seed_history(store, [500.0])  # one run < MIN_RUNS
    assert MIN_RUNS == 2
    regressions, checked = history_gate(
        store, _fresh(fast=100.0), 1.0, ["fast_ops_per_sec"])
    assert checked == 0 and regressions == []


def test_history_gate_flags_throughput_drop(tmp_path):
    store = ResultStore(str(tmp_path))
    _seed_history(store, [480.0, 500.0, 520.0])
    regressions, checked = history_gate(
        store, _fresh(fast=250.0), 1.0, ["fast_ops_per_sec"],
        threshold=0.25)
    assert checked == 1
    ((name, mid, got, ratio),) = regressions
    assert name == "msm.256.fast_ops_per_sec"
    assert mid == 500.0 and got == 250.0 and ratio == 0.5

    # Same drop but caused by a slower machine: the factor absolves it.
    regressions, checked = history_gate(
        store, _fresh(fast=250.0), 0.5, ["fast_ops_per_sec"],
        threshold=0.25)
    assert checked == 1 and regressions == []


def test_history_gate_flags_inverse_counter_growth(tmp_path):
    store = ResultStore(str(tmp_path))
    _seed_history(store, [500.0, 500.0])
    gated = ["fast_ops_per_sec", "remote_connects_per_proof"]
    # Counter septuples (pooling regression): trips regardless of factor.
    regressions, _ = history_gate(
        store, _fresh(fast=500.0, connects=7.0), 1.0, gated)
    assert [r[0] for r in regressions] == [
        "service.b4.remote_connects_per_proof"]
    # At the trend it passes.
    regressions, _ = history_gate(
        store, _fresh(fast=500.0, connects=1.0), 1.0, gated)
    assert regressions == []


def test_history_gate_uses_median_of_window(tmp_path):
    store = ResultStore(str(tmp_path))
    # One ancient great run outside the window must not set the bar.
    _seed_history(store, [5000.0, 500.0, 500.0, 500.0, 500.0, 500.0])
    regressions, checked = history_gate(
        store, _fresh(fast=450.0), 1.0, ["fast_ops_per_sec"],
        window=DEFAULT_WINDOW)
    assert checked == 1 and regressions == []


def test_check_regression_history_check_gates_then_appends(tmp_path):
    """The CLI-level --history path: gate before append, append always."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
    try:
        from check_regression import history_check
    finally:
        sys.path.pop(0)

    store = ResultStore(str(tmp_path))
    _seed_history(store, [500.0, 500.0])

    # Healthy run: nothing regresses, and the pass lands in the store.
    regressions, checked, record, n_hist = history_check(
        str(tmp_path), _fresh(fast=490.0), 1.0, 0.25)
    assert checked >= 1 and regressions == [] and n_hist == 2
    assert record.path and os.path.exists(record.path)
    assert len(store.records(suite=HISTORY_SUITE, scan=HISTORY_SCAN)) == 3

    # Regressed run: flagged, but still appended (median keeps one bad
    # run from dragging the trend).
    regressions, checked, record, _ = history_check(
        str(tmp_path), _fresh(fast=100.0), 1.0, 0.25)
    assert any(name == "msm.256.fast_ops_per_sec"
               for name, *_ in regressions)
    assert len(store.records(suite=HISTORY_SUITE, scan=HISTORY_SCAN)) == 4


def test_check_regression_history_demotes_core_scaled_on_mixed_hosts(
        tmp_path, capsys):
    sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
    try:
        from check_regression import history_check
    finally:
        sys.path.pop(0)

    def fresh(cpu, procs):
        return {
            "meta": {"cpu_count": cpu},
            "service": {"b4": {"process_ops_per_sec": procs,
                               "fast_ops_per_sec": 500.0}},
        }

    store = ResultStore(str(tmp_path))
    append_history(store, fresh(16, 400.0), 1.0)
    append_history(store, fresh(16, 400.0), 1.0)

    # A 4-core host falling far below the 16-core trend on the pool
    # metric is hardware, not a regression — but the plain fast-path
    # metric still gates.
    regressions, checked, _, _ = history_check(
        str(tmp_path), fresh(4, 90.0), 1.0, 0.25)
    assert "not gating" in capsys.readouterr().out
    assert all(name != "service.b4.process_ops_per_sec"
               for name, *_ in regressions)
    assert checked >= 1


# -- suite end-to-end + CLI --------------------------------------------------


def test_paper_suite_cheap_scans_end_to_end(tmp_path):
    store = ResultStore(str(tmp_path))
    outcomes = PAPER_SUITE.run(store, scans=["table1", "psq"])
    assert set(outcomes) == {"table1", "psq"}
    assert all(o.records for o in outcomes.values())

    # Renders come from the store alone: a fresh store handle suffices.
    rendered = dict(PAPER_SUITE.render(ResultStore(str(tmp_path)),
                                       scans=["table1", "psq"]))
    assert "Table I" in rendered["table1"]
    assert "zkVC" in rendered["table1"]
    assert "left-wire accounting" in rendered["psq"]
    assert "crpc_psq" in rendered["psq"]

    with pytest.raises(ValueError):
        PAPER_SUITE.run(store, scans=["no_such_scan"])


def test_cli_list_show_frontier(tmp_path, capsys):
    store = ResultStore(str(tmp_path))
    PAPER_SUITE.run(store, scans=["table1"])
    store.append("adhoc", "probe", {"n": 1}, {"ops": 2.0})

    assert obs_cli.main(["--store", str(tmp_path), "list"]) == 0
    out = capsys.readouterr().out
    assert "paper" in out and "table1" in out and "adhoc" in out

    assert obs_cli.main(
        ["--store", str(tmp_path), "show", "table1", "--suite", "paper"]
    ) == 0
    assert "Table I" in capsys.readouterr().out

    assert obs_cli.main(
        ["--store", str(tmp_path), "frontier", "--suite", "adhoc"]) == 0
    out = capsys.readouterr().out
    assert "probe" in out and "2" in out
