"""Process-pool proving executor.

Covers the executor contract: serial, thread, and process executors
produce bundles that all verify through one detached verifier (both
backends); the chunk policy's inline/shard decisions; worker keystore
discipline (rehydrate-or-fail, never mint keys); and failure isolation —
a poisoned group or a *dying* worker must never take down the other
groups' finished proofs.
"""

import os

import pytest
from _matutil import rand_mats

from repro import serialize
from repro.core import (
    CircuitRegistry,
    CorruptEnvelope,
    GroupChunkPolicy,
    KeyStore,
    MatmulVerifier,
    MissingKey,
    ProcessProvingExecutor,
    ProvingError,
    ProvingService,
    RetryPolicy,
)
from repro.core.pool import _CRASH_ENV

DISPATCH_ALWAYS = dict(min_dispatch_seconds=0.0)

#: keep failure tests fast: short backoff, quick bisection
FAST_RETRIES = RetryPolicy(
    max_attempts=2, backoff_base_seconds=0.001, lease_floor_seconds=60.0
)


def make_service(tmp_path, executor, start_method=None, workers=2, **kwargs):
    registry = CircuitRegistry()
    keystore = KeyStore(root=str(tmp_path), registry=registry)
    kwargs.setdefault("retry_policy", FAST_RETRIES)
    return ProvingService(
        workers=workers,
        registry=registry,
        keystore=keystore,
        executor=executor,
        start_method=start_method,
        chunk_policy=GroupChunkPolicy(workers=workers, **DISPATCH_ALWAYS),
        **kwargs,
    )


class TestChunkPolicy:
    KEY_SMALL = (2, 2, 2, "crpc_psq", "groth16")
    KEY_BIG = (8, 16, 8, "crpc_psq", "groth16")

    def test_small_groups_stay_inline(self):
        policy = GroupChunkPolicy(workers=4)
        assert policy.plan(self.KEY_SMALL, 1) == 0
        assert policy.plan(self.KEY_SMALL, 0) == 0

    def test_large_groups_shard_up_to_workers(self):
        policy = GroupChunkPolicy(workers=4, min_dispatch_seconds=0.0)
        assert policy.plan(self.KEY_BIG, 8) == 4   # capped by workers
        assert policy.plan(self.KEY_BIG, 3) == 3   # capped by job count
        assert policy.plan(self.KEY_BIG, 1) == 1

    def test_threshold_scales_with_circuit_cost(self):
        policy = GroupChunkPolicy(workers=4)
        # The same job count that stays inline for a tiny circuit is
        # worth dispatching for a big one.
        jobs = 4
        assert policy.plan(self.KEY_SMALL, jobs) == 0
        assert policy.plan(self.KEY_BIG, jobs) > 0

    def test_cost_model_overrides_static_rate(self):
        class FreeModel:
            def groth16_prove_time(self, cost):
                return 0.0

            def spartan_prove_time(self, cost):
                return 0.0

        class DearModel(FreeModel):
            def groth16_prove_time(self, cost):
                return 10.0

        free = GroupChunkPolicy(workers=4, cost_model=FreeModel())
        dear = GroupChunkPolicy(workers=4, cost_model=DearModel())
        assert free.plan(self.KEY_BIG, 8) == 0
        assert dear.plan(self.KEY_SMALL, 8) == 4

    def test_chunk_partition_is_balanced_and_ordered(self):
        jobs = list(range(7))
        chunks = GroupChunkPolicy.chunk(jobs, 3)
        assert [j for c in chunks for j in c] == jobs
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert GroupChunkPolicy.chunk(jobs, 99) == [[j] for j in jobs]


class TestJobEnvelopes:
    def test_roundtrip(self):
        x, w = rand_mats(2, 3, 2, seed=1)
        blob = serialize.prove_jobs_to_bytes(
            [(7, x, w, "crpc_psq", "spartan")]
        )
        ((job_id, x2, w2, strategy, backend),) = serialize.prove_jobs_from_bytes(
            blob
        )
        assert job_id == 7 and strategy == "crpc_psq" and backend == "spartan"
        # entries come back canonical mod R
        from repro.field.prime_field import BN254_FR_MODULUS as R

        assert x2 == [[v % R for v in row] for row in x]
        assert w2 == [[v % R for v in row] for row in w]

    def test_results_roundtrip(self):
        blob = serialize.job_results_to_bytes([(3, b"bundle-bytes", 0.25)])
        ((job_id, bundle_bytes, secs),) = serialize.job_results_from_bytes(blob)
        assert (job_id, bundle_bytes, secs) == (3, b"bundle-bytes", 0.25)

    def test_ragged_job_rejected(self):
        with pytest.raises(serialize.SerializationError):
            serialize.prove_job_to_bytes(0, [[1, 2], [3]], [[1], [2]], "s", "b")

    def test_truncated_envelope_rejected(self):
        x, w = rand_mats(2, 2, 2, seed=2)
        blob = serialize.prove_jobs_to_bytes([(0, x, w, "crpc_psq", "spartan")])
        with pytest.raises(CorruptEnvelope) as excinfo:
            serialize.prove_jobs_from_bytes(blob[:-5])
        # typed, still a ValueError for legacy handlers, and it says where
        assert isinstance(excinfo.value, ValueError)
        assert excinfo.value.offset is not None

    def test_empty_matrices_rejected(self):
        for x, w in ([], [[1]]), ([[]], [[1]]), ([[1]], []), ([[1]], [[]]):
            with pytest.raises(serialize.SerializationError):
                serialize.prove_job_to_bytes(0, x, w, "s", "b")


@pytest.mark.parametrize("backend", ["groth16", "spartan"])
class TestExecutorEquivalence:
    def test_all_executors_verify_under_one_detached_key(
        self, backend, tmp_path
    ):
        """Serial, thread, and process executors over one shared disk
        keystore produce bundles that a single detached verifier (built
        from exported bytes alone) accepts."""
        registry = CircuitRegistry()
        keystore = KeyStore(root=str(tmp_path), registry=registry)
        all_bytes = []
        artifact = None
        for executor in ("serial", "thread", "process"):
            svc = ProvingService(
                workers=2,
                registry=registry,
                keystore=keystore,
                executor=executor,
                chunk_policy=GroupChunkPolicy(workers=2, **DISPATCH_ALWAYS),
            )
            for seed in range(2):
                svc.submit(*rand_mats(2, 3, 2, seed=seed), backend=backend)
            report = svc.run()
            assert not report.errors and not report.invalid_jobs
            assert len(report.results) == 2
            if executor == "process":
                (key,) = report.groups
                assert report.placements[key] == "process"
            all_bytes.extend(r.bundle_bytes for r in report.results)
            if artifact is None:
                (key,) = report.groups
                artifact = svc.export_verifier(key)
        # keys were set up exactly once and adopted everywhere
        assert keystore.setups <= 1
        verifier = MatmulVerifier.from_bytes(artifact, registry=CircuitRegistry())
        assert all(verifier.verify_bytes(blob) for blob in all_bytes)

    def test_spawn_start_method(self, backend, tmp_path):
        """The worker entrypoint survives ``spawn`` (no inherited state:
        fresh interpreter, keys rehydrated from disk only)."""
        svc = make_service(tmp_path, "process", start_method="spawn")
        svc.submit(*rand_mats(2, 2, 2, seed=3), backend=backend)
        svc.submit(*rand_mats(2, 2, 2, seed=4), backend=backend)
        report = svc.run(verify=True)
        assert report.verified
        assert set(report.placements.values()) == {"process"}


class TestFailureIsolation:
    def test_poisoned_group_reported_not_fatal(self, tmp_path):
        """Jobs whose matrices cannot even be wire-encoded fail their own
        group at dispatch; other groups still serve."""
        svc = make_service(tmp_path, "process")
        good = svc.submit(*rand_mats(2, 2, 2, seed=1), backend="spartan")
        svc.submit([["x", "y"], [1, 2]], [[1], [2]], backend="spartan")
        report = svc.run(verify=True)
        assert [r.job_id for r in report.results] == [good]
        assert len(report.errors) == 1
        assert report.verified is False
        assert svc.verify_report(report)

    def test_dying_worker_poisons_only_its_group(self, tmp_path, monkeypatch):
        """A worker that dies without cleanup (simulated segfault) breaks
        the shared pool; innocent groups are re-dispatched in a fresh pool
        and complete, while the culprit — which keeps crashing every
        retry — is bisected down to a quarantined poison job."""
        monkeypatch.setenv(_CRASH_ENV, "crpc")
        svc = make_service(tmp_path, "process")
        good = [
            svc.submit(*rand_mats(2, 2, 2, seed=s), backend="spartan")
            for s in range(2)
        ]
        bad = svc.submit(
            *rand_mats(2, 2, 2, seed=9), strategy="crpc", backend="spartan"
        )
        report = svc.run()
        assert [r.job_id for r in report.results] == good
        assert not report.errors  # the crash was isolated, not group-fatal
        (poison,) = report.quarantined()
        assert poison.job_id == bad
        assert "worker-crash" in (poison.error or "")
        assert {j: o.status for j, o in report.job_outcomes.items()} == {
            good[0]: "ok",
            good[1]: "ok",
            bad: "quarantined",
        }
        assert svc.verify_report(report)

    @pytest.mark.parametrize("fallback", [True, False])
    def test_partially_failed_sharded_group(self, tmp_path, fallback):
        """A chunk-fatal failure inside a sharded group keeps the other
        chunks' results.  With the degradation ladder on (the default) the
        missing jobs are re-served inline and the group fully recovers;
        with ``fallback=False`` the partial results are kept and the
        group reports the typed chunk error."""
        from repro.core import PoolOutcome
        from repro.core.pool import _prove_group_worker

        svc = make_service(tmp_path, "process", fallback=fallback)
        root = str(tmp_path)

        class HalfBrokenPool:
            breakages = 0

            def start(self, tasks, timeouts=None):
                return list(tasks)

            def finish(self, tasks, futures, timeouts=None):
                outcome = PoolOutcome()
                (tag0, blob0), (tag1, _) = futures
                outcome.results[tag0] = serialize.job_results_from_bytes(
                    _prove_group_worker(root, blob0)
                )
                outcome.attempts[tag0] = 1
                outcome.errors[tag1] = ProvingError("MemoryError: boom")
                return outcome

            def shutdown(self):
                pass

        svc._pool = HalfBrokenPool()
        ids = [
            svc.submit(*rand_mats(2, 2, 2, seed=seed), backend="spartan")
            for seed in range(4)  # one group, sharded into 2 chunks
        ]
        report = svc.run()
        (key,) = report.groups
        if fallback:
            assert [r.job_id for r in report.results] == ids
            assert not report.errors
            assert report.placements[key] == "process+inline"
            assert any("process->inline" in f for f in report.fallbacks)
        else:
            # the surviving chunk's proofs are not discarded
            assert [r.job_id for r in report.results] == ids[:2]
            assert "MemoryError" in report.errors[key]
            assert [
                o.job_id
                for o in report.job_outcomes.values()
                if o.status == "failed"
            ] == ids[2:]
        assert svc.verify_report(report)

    def test_worker_refuses_to_mint_keys(self, tmp_path):
        """A groth16 chunk dispatched against a root that holds no
        published keypair must fail with KeyError — a worker-minted key
        would produce proofs nobody can verify."""
        x, w = rand_mats(2, 2, 2, seed=5)
        blob = serialize.prove_jobs_to_bytes(
            [(0, x, w, "crpc_psq", "groth16")]
        )
        executor = ProcessProvingExecutor(
            workers=1, keystore_root=str(tmp_path)
        )
        outcome = executor.run([(("g", 0), blob)])
        assert not outcome.results
        err = outcome.errors[("g", 0)]
        assert isinstance(err, MissingKey)  # typed: not retried, not bisected
        assert "KeyError" in str(err)
        # ...and it wrote nothing: the root is still empty.
        assert os.listdir(tmp_path) == []


class TestWorkerKeystoreDiscipline:
    def test_readonly_keystore_never_writes(self, tmp_path):
        root = tmp_path / "absent"
        store = KeyStore(root=str(root), registry=CircuitRegistry(), readonly=True)
        with pytest.raises(KeyError):
            store.artifacts(2, 2, 2, "crpc_psq", "groth16")
        assert not root.exists()

    def test_readonly_forces_create_false(self, tmp_path):
        store = KeyStore(
            root=str(tmp_path), registry=CircuitRegistry(), readonly=True
        )
        with pytest.raises(KeyError):
            store.artifacts(2, 2, 2, "crpc_psq", "groth16", create=True)
        assert store.setups == 0

    def test_groth16_dispatch_without_root_stays_inline(self):
        """No disk root -> workers could not rehydrate, so the group is
        served in-process instead of failing."""
        registry = CircuitRegistry()
        keystore = KeyStore(registry=registry)  # memory-only
        svc = ProvingService(
            workers=2,
            registry=registry,
            keystore=keystore,
            executor="process",
            chunk_policy=GroupChunkPolicy(workers=2, **DISPATCH_ALWAYS),
        )
        svc.submit(*rand_mats(2, 2, 2, seed=6), backend="groth16")
        report = svc.run(verify=True)
        assert report.verified
        (key,) = report.groups
        assert report.placements[key] == "inline"


class TestVerifiableInferenceProcessPath:
    def test_layer_proofs_via_process_executor(self, tmp_path):
        """The zkml opt-in: captured layer matmuls route through the
        process executor and still verify layer-by-layer."""
        import numpy as np

        from repro.zkml import VerifiableInference

        registry = CircuitRegistry()
        keystore = KeyStore(root=str(tmp_path), registry=registry)
        vi = VerifiableInference(
            None,
            backend="spartan",
            registry=registry,
            keystore=keystore,
            executor="process",
            workers=2,
        )
        rng = np.random.default_rng(0)
        captured = [
            (f"layer{i}", rng.integers(-5, 5, (2, 3)), rng.integers(-5, 5, (3, 2)))
            for i in range(3)
        ]
        proofs = vi._prove_layers(captured)
        assert [p.layer for p in proofs] == ["layer0", "layer1", "layer2"]
        from repro.zkml import InferenceProof

        assert vi.verify(InferenceProof(0, [], proofs))
        # the service (and its worker pool) persists across prove calls
        assert vi._prove_layers(captured[:1])[0].layer == "layer0"
        assert vi._service is not None
        vi.close()
