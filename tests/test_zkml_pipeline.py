"""The zk-ML codesign pipeline (Table I's last column): train with exact
GELU, fine-tune with the paper's polynomial, quantise — accuracy must
survive every step, and the mixer accuracy ordering of Tables III/IV must
emerge on the synthetic stand-ins."""

import numpy as np
import pytest

from repro.nn import (
    VisionTransformer,
    make_nlp_task,
    make_vision_dataset,
    train_model,
    uniform_plan,
)
from repro.nn.train import evaluate
from repro.nn.transformer import TextTransformer
from repro.zkml import QuantizedTransformer


def finetune_poly_gelu(model, data, epochs=3, lr=0.01):
    for blk in model.encoder.blocks:
        blk.mlp.poly_gelu = True
    return train_model(model, data, epochs=epochs, lr=lr, seed=2)


@pytest.fixture(scope="module")
def vision_data():
    return make_vision_dataset("cifar10", 600, seed=3)


def train_mixer(mixer, data, layers=2, dim=48, epochs=10):
    model = VisionTransformer(
        16, 4, dim=dim, heads=4, num_classes=8,
        mixer_plan=uniform_plan(mixer, layers),
        rng=np.random.default_rng(0),
    )
    train_model(model, data, epochs=epochs, lr=0.08, seed=1)
    return model


@pytest.mark.slow
class TestCodesignPipeline:
    def test_poly_finetune_recovers_accuracy(self, vision_data):
        model = train_mixer("softmax", vision_data)
        base = evaluate(model, vision_data.test_x, vision_data.test_y)
        finetune_poly_gelu(model, vision_data)
        tuned = evaluate(model, vision_data.test_x, vision_data.test_y)
        q = QuantizedTransformer(model)
        q_acc = q.accuracy(vision_data.test_x, vision_data.test_y)
        assert base > 0.6, "base training failed to learn"
        assert tuned >= base - 0.05
        assert q_acc >= tuned - 0.05

    def test_mixer_accuracy_ordering(self, vision_data):
        """Table III's shape: softmax > scaling > pooling."""
        accs = {}
        for mixer in ("softmax", "scaling", "pooling"):
            model = train_mixer(mixer, vision_data)
            accs[mixer] = evaluate(
                model, vision_data.test_x, vision_data.test_y
            )
        assert accs["softmax"] > accs["scaling"] > accs["pooling"]

    def test_hybrid_between_extremes(self, vision_data):
        """zkVC's hybrid plan should land between all-softmax and
        all-pooling in accuracy."""
        hybrid = VisionTransformer(
            16, 4, dim=48, heads=4, num_classes=8,
            mixer_plan=["pooling", "softmax"],
            rng=np.random.default_rng(0),
        )
        train_model(hybrid, vision_data, epochs=10, lr=0.08, seed=1)
        h_acc = evaluate(hybrid, vision_data.test_x, vision_data.test_y)
        pool = train_mixer("pooling", vision_data)
        p_acc = evaluate(pool, vision_data.test_x, vision_data.test_y)
        assert h_acc > p_acc


@pytest.mark.slow
class TestNlpOrdering:
    def test_sst2_learnable_by_both_mixers(self):
        """Both mixer families must learn the SST-2 stand-in well.

        Note (recorded in EXPERIMENTS.md): on these token-level synthetic
        tasks static linear mixing is competitive — the paper's GLUE
        advantage of SoftMax attention does not fully transfer to the
        stand-ins; the vision tasks (Table III tests above) carry the
        mixer-ordering reproduction.
        """
        data, classes = make_nlp_task("sst2", 700, seq_len=12, seed=4)
        accs = {}
        for mixer in ("softmax", "linear"):
            model = TextTransformer(
                24, 12, 32, 4, classes,
                uniform_plan(mixer, 2), np.random.default_rng(0),
            )
            train_model(model, data, epochs=8, lr=0.08, seed=1)
            accs[mixer] = evaluate(model, data.test_x, data.test_y)
        assert accs["softmax"] > 0.9
        assert accs["linear"] > 0.9
