"""Groth16 end-to-end: completeness, soundness probes, zero-knowledge
randomisation.  Setup is expensive in pure Python, so one keypair is shared
per circuit via module fixtures."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import serialize
from repro.field.ntt import next_power_of_two
from repro.field.prime_field import BN254_FR_MODULUS
from repro.groth16 import prove, setup, verify
from repro.groth16.prove import _compute_h, _compute_h_reference
from repro.r1cs import LC, ConstraintSystem

R = BN254_FR_MODULUS


def make_circuit(x1=3, x2=4, w=5):
    """y = (x1 + w)(x2 + w) from the paper's Fig. 2, plus a cube chain."""
    cs = ConstraintSystem()
    a = cs.alloc_public("x1", x1)
    b = cs.alloc_public("x2", x2)
    y = cs.alloc_public("y", (x1 + w) * (x2 + w))
    ww = cs.alloc("w", w)
    cs.enforce(
        LC.from_wire(a) + LC.from_wire(ww),
        LC.from_wire(b) + LC.from_wire(ww),
        LC.from_wire(y),
    )
    w2 = cs.mul(LC.from_wire(ww), LC.from_wire(ww), "w2")
    cs.mul(LC.from_wire(w2), LC.from_wire(ww), "w3")
    return cs


@pytest.fixture(scope="module")
def circuit():
    return make_circuit()


@pytest.fixture(scope="module")
def instance(circuit):
    return circuit.specialize(1)


@pytest.fixture(scope="module")
def keypair(instance):
    rng = random.Random(42)
    return setup(instance, rng=lambda: rng.getrandbits(256))


@pytest.fixture(scope="module")
def proof(keypair, instance, circuit):
    return prove(keypair.pk, instance, circuit.assignment())


class TestCompleteness:
    def test_honest_proof_verifies(self, keypair, proof, circuit):
        assert verify(keypair.vk, circuit.public_inputs(), proof)

    def test_different_witness_same_statement(self, keypair, instance):
        # y = 72 also from (x1,x2,w)=(3,4,5); re-prove and verify.
        cs = make_circuit()
        pf = prove(keypair.pk, instance, cs.assignment())
        assert verify(keypair.vk, cs.public_inputs(), pf)

    def test_proof_size_constant(self, proof):
        assert proof.size_bytes() == 256


class TestSoundnessProbes:
    def test_wrong_public_input_rejected(self, keypair, proof):
        assert not verify(keypair.vk, [3, 4, 71], proof)

    def test_swapped_inputs_rejected(self, keypair, proof):
        assert not verify(keypair.vk, [4, 3, 73], proof)

    def test_mangled_proof_a_rejected(self, keypair, proof, circuit):
        from repro.curve.bn254 import multiply
        from repro.groth16.keys import Proof

        bad = Proof(a=multiply(proof.a, 2), b=proof.b, c=proof.c)
        assert not verify(keypair.vk, circuit.public_inputs(), bad)

    def test_mangled_proof_c_rejected(self, keypair, proof, circuit):
        from repro.curve.bn254 import multiply
        from repro.groth16.keys import Proof

        bad = Proof(a=proof.a, b=proof.b, c=multiply(proof.c, 3))
        assert not verify(keypair.vk, circuit.public_inputs(), bad)

    def test_wrong_input_count_rejected(self, keypair, proof):
        with pytest.raises(ValueError):
            verify(keypair.vk, [3, 4], proof)

    def test_unsatisfying_assignment_breaks_h(self, instance, circuit):
        bad = circuit.assignment()
        bad[3] = (bad[3] + 1) % R  # corrupt the witness
        # The quotient is no longer a polynomial: high coefficients of the
        # "would-be" h spill beyond deg N-2, so proving with it fails
        # verification.
        h = _compute_h(instance, circuit.assignment(), 4)
        assert len(h) <= 3


class TestZeroKnowledge:
    def test_proofs_are_randomised(self, keypair, instance, circuit):
        """Two proofs of the same statement+witness must differ (r, s
        blinding), yet both verify."""
        pf1 = prove(keypair.pk, instance, circuit.assignment())
        pf2 = prove(keypair.pk, instance, circuit.assignment())
        assert pf1.a != pf2.a
        assert pf1.c != pf2.c
        assert verify(keypair.vk, circuit.public_inputs(), pf1)
        assert verify(keypair.vk, circuit.public_inputs(), pf2)


class TestKeys:
    def test_pk_sizes_positive(self, keypair):
        assert keypair.pk.size_bytes() > 0
        assert keypair.vk.size_bytes() > 0

    def test_ic_matches_publics(self, keypair, circuit):
        assert len(keypair.vk.ic) == circuit.num_public

    def test_assignment_length_checked(self, keypair, instance):
        with pytest.raises(ValueError):
            prove(keypair.pk, instance, [1, 2, 3])


def _mul_chain_circuit(rng, depth):
    """A satisfied circuit with ``depth + 1`` multiplication constraints."""
    cs = ConstraintSystem()
    x = cs.alloc_public("x", rng.randrange(1, R))
    cur = cs.mul(LC.from_wire(x), LC.from_wire(x), "sq")
    for i in range(depth):
        cur = cs.mul(LC.from_wire(cur), LC.from_wire(x), f"m{i}")
    return cs


def _det_rng(seed=0x5EED):
    r = random.Random(seed)
    return lambda: r.getrandbits(256)


class TestQuotientEquivalence:
    """The planned same-size-coset quotient pipeline must compute the exact
    polynomial the seed doubled-domain reference computes."""

    @given(st.integers(min_value=0, max_value=40), st.integers())
    @settings(max_examples=10, deadline=None)
    def test_compute_h_matches_reference(self, depth, seed):
        rng = random.Random(seed)
        cs = _mul_chain_circuit(rng, depth)
        inst = cs.specialize(1)
        domain = next_power_of_two(inst.num_constraints)
        assignment = cs.assignment()
        assert _compute_h(inst, assignment, domain) == _compute_h_reference(
            inst, assignment, domain
        )

    def test_reference_on_module_circuit(self, instance, circuit):
        assert _compute_h(instance, circuit.assignment(), 4) == (
            _compute_h_reference(instance, circuit.assignment(), 4)
        )

    def test_context_rebuilds_after_plan_cache_clear(self, instance, circuit):
        from repro.field.ntt import clear_ntt_plan_cache, get_plan
        from repro.groth16.prove import _quotient_context

        expected = _compute_h(instance, circuit.assignment(), 4)
        ctx_before = _quotient_context(4)
        clear_ntt_plan_cache()
        # The context must follow the fresh plan, not pin the stale one.
        ctx_after = _quotient_context(4)
        assert ctx_after is not ctx_before
        assert ctx_after.plan is get_plan(4)
        assert _compute_h(instance, circuit.assignment(), 4) == expected


class TestPlannedQuotientProofBytes:
    def test_byte_identical_fresh_and_rehydrated(
        self, keypair, instance, circuit, monkeypatch
    ):
        """With a fixed blinding rng, proofs must be byte-identical whether
        h comes from the planned pipeline or the seed reference, and
        whether the key is the original or a serialisation round trip."""
        import importlib

        # ``repro.groth16.prove`` the attribute is the re-exported function;
        # fetch the real module to patch its _compute_h global.
        prove_mod = importlib.import_module("repro.groth16.prove")

        assignment = circuit.assignment()
        pf_fast = prove(keypair.pk, instance, assignment, rng=_det_rng())
        monkeypatch.setattr(
            prove_mod, "_compute_h", prove_mod._compute_h_reference
        )
        pf_ref = prove(keypair.pk, instance, assignment, rng=_det_rng())
        monkeypatch.undo()

        kp2 = serialize.groth16_keypair_from_bytes(
            serialize.groth16_keypair_to_bytes(keypair)
        )
        pf_re = prove(kp2.pk, instance, assignment, rng=_det_rng())

        assert pf_fast.to_bytes() == pf_ref.to_bytes()
        assert pf_fast.to_bytes() == pf_re.to_bytes()
        assert verify(keypair.vk, circuit.public_inputs(), pf_fast)


class TestProvingKeyFingerprint:
    def test_stable_across_rehydration(self, keypair):
        kp2 = serialize.groth16_keypair_from_bytes(
            serialize.groth16_keypair_to_bytes(keypair)
        )
        assert kp2.pk.fingerprint() == keypair.pk.fingerprint()

    def test_distinct_setups_differ(self, keypair, instance):
        rng = random.Random(1234)
        other = setup(instance, rng=lambda: rng.getrandbits(256))
        assert other.pk.fingerprint() != keypair.pk.fingerprint()

    def test_fingerprint_cached(self, keypair):
        assert keypair.pk.fingerprint() is keypair.pk.fingerprint()

    def test_warm_tables_survive_rehydration(self, keypair, instance, circuit):
        """A rehydrated key lands on the same fixed-base cache slot (stable
        fingerprint label) and keeps the promoted window tables."""
        from repro.curve.fixed_base import (
            _FIXED_BASE_CACHE,
            clear_fixed_base_cache,
        )

        clear_fixed_base_cache()
        try:
            assignment = circuit.assignment()
            for _ in range(2):  # second sighting promotes to tables
                prove(keypair.pk, instance, assignment)
            label = ("groth16-a", keypair.pk.fingerprint())
            entry = _FIXED_BASE_CACHE[label]
            assert entry.table is not None
            table = entry.table

            kp2 = serialize.groth16_keypair_from_bytes(
                serialize.groth16_keypair_to_bytes(keypair)
            )
            pf = prove(kp2.pk, instance, assignment)
            after = _FIXED_BASE_CACHE[label]
            assert after is entry and after.table is table
            # Rebound to the rehydrated list: identity fast path from now on.
            assert after.points is kp2.pk.a_query
            assert verify(keypair.vk, circuit.public_inputs(), pf)
        finally:
            clear_fixed_base_cache()


class TestPackedCircuitGroth16:
    def test_packed_circuit_proves(self):
        """A circuit with Z-packed coefficients, specialised at its public
        packing point, goes through Groth16 unchanged."""
        cs = ConstraintSystem()
        x = cs.alloc_public("x", 3)
        y = cs.alloc_public("y")
        z = 1000
        cs.set_value(y, (3 + 3 * z) * 3 % R)
        cs.enforce(
            LC.from_wire(x) + LC.from_wire(x, z_deg=1),
            LC.from_wire(x),
            LC.from_wire(y),
        )
        inst = cs.specialize(z)
        rng = random.Random(7)
        kp = setup(inst, rng=lambda: rng.getrandbits(256))
        pf = prove(kp.pk, inst, cs.assignment())
        assert verify(kp.vk, cs.public_inputs(), pf)
        assert not verify(kp.vk, [3, 1], pf)
