"""Shared helper for the serving-stack tests."""

import random


def rand_mats(a: int, n: int, b: int, seed: int = 0):
    """Random signed matmul operands."""
    r = random.Random(seed)
    x = [[r.randrange(-40, 40) for _ in range(n)] for _ in range(a)]
    w = [[r.randrange(-40, 40) for _ in range(b)] for _ in range(n)]
    return x, w
