"""Ring-axiom and inverse tests for the Fq2/Fq12 tower."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.extension import Fq2, Fq12, P

coeff = st.integers(min_value=0, max_value=P - 1)
fq2_elems = st.builds(lambda a, b: Fq2([a, b]), coeff, coeff)
fq12_elems = st.builds(
    lambda cs: Fq12(cs), st.lists(coeff, min_size=12, max_size=12)
)


class TestFq2:
    def test_u_squared_is_minus_one(self):
        u = Fq2([0, 1])
        assert u * u == Fq2([P - 1, 0])

    @given(fq2_elems, fq2_elems)
    def test_mul_commutes(self, a, b):
        assert a * b == b * a

    @given(fq2_elems, fq2_elems, fq2_elems)
    def test_mul_distributes(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(fq2_elems)
    def test_inverse(self, a):
        if a.is_zero():
            with pytest.raises(ZeroDivisionError):
                a.inv()
        else:
            assert a * a.inv() == Fq2.one()

    @given(fq2_elems)
    def test_closed_form_inverse_matches_euclid(self, a):
        if not a.is_zero():
            # The generic ExtElem.inv (Euclid) must agree with Fq2's
            # closed form.
            generic = super(Fq2, a).inv()
            assert a.inv() == generic

    def test_conjugate_norm(self):
        a = Fq2([3, 4])
        n = a * a.conjugate()
        assert n.coeffs[1] == 0
        assert n.coeffs[0] == (3 * 3 + 4 * 4) % P

    def test_int_coercion(self):
        assert Fq2([5, 0]) == 5
        assert Fq2([3, 0]) + 2 == Fq2([5, 0])
        assert Fq2([3, 1]) * 2 == Fq2([6, 2])

    def test_division(self):
        a, b = Fq2([3, 7]), Fq2([2, 9])
        assert (a / b) * b == a


class TestFq12:
    def test_modulus_relation(self):
        # w^12 = 18 w^6 - 82
        w = Fq12([0, 1] + [0] * 10)
        lhs = w ** 12
        rhs = w ** 6 * 18 - Fq12.from_int(82)
        assert lhs == rhs

    @given(fq12_elems, fq12_elems)
    def test_mul_commutes(self, a, b):
        assert a * b == b * a

    @given(fq12_elems)
    def test_inverse(self, a):
        if not a.is_zero():
            assert a * a.inv() == Fq12.one()

    @given(fq12_elems)
    def test_pow_matches_repeated_mul(self, a):
        acc = Fq12.one()
        for _ in range(5):
            acc = acc * a
        assert a ** 5 == acc

    def test_pow_negative_exponent(self):
        a = Fq12([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12])
        assert a ** -2 == (a ** 2).inv()

    def test_coefficient_count_enforced(self):
        with pytest.raises(ValueError):
            Fq12([1, 2, 3])

    def test_mixed_types_rejected(self):
        with pytest.raises(TypeError):
            Fq12.one() + Fq2.one()

    def test_sub_neg(self):
        a = Fq12.from_int(9)
        assert a - a == Fq12.zero()
        assert -a + a == Fq12.zero()
