"""Fault-tolerant proving pipeline.

The fault matrix {crash, hang, corrupt envelope, missing key, poison job}
x {serial, thread, process, remote} drives every injected failure through
the full service stack and asserts the structured outcome: retryable faults
*recover* (every job proves and verifies), non-retryable faults degrade
to a quarantine record or an inline fallback — never a hang, never a raw
untyped exception, and never collateral damage to the other jobs in the
batch.  Alongside the matrix: unit coverage for the typed taxonomy
(:mod:`repro.core.errors`), the retry/lease policy
(:mod:`repro.core.resilience`), the fault-injection harness itself, the
executor degradation ladder, and shutdown/close idempotency.
"""

import os
import pickle
import random

import pytest
from _matutil import rand_mats

from repro.core import (
    BARE_POLICY,
    ChunkLease,
    ChunkTimeout,
    CircuitRegistry,
    CorruptEnvelope,
    FaultPlan,
    FaultSpec,
    GroupChunkPolicy,
    KeyStore,
    MissingKey,
    PoisonJob,
    ProcessProvingExecutor,
    ProvingError,
    ProvingService,
    RetryPolicy,
    WorkerCrash,
    wrap_error,
)
from repro.core.faultinject import ENV_VAR
from repro.core.remote_worker import launch_loopback_workers, stop_workers

EXECUTORS = ("serial", "thread", "process", "remote")
#: the dispatch tiers whose chunk-fatal errors fall back inline (vs the
#: inline tiers, where a non-retryable fault fails just the hit job)
DISPATCH_TIERS = ("process", "remote")
FAULTS = ("crash", "hang", "corrupt", "missing_key", "poison")

#: test-speed policy: quick backoff, a lease short enough that a hung
#: worker is reaped in ~1s but long enough that honest tiny proofs
#: (milliseconds) never trip it
FAST = RetryPolicy(
    max_attempts=3,
    backoff_base_seconds=0.001,
    lease_floor_seconds=1.0,
    lease_multiplier=40.0,
)

#: remote-tier variant: the lease is enforced as a *socket deadline* on
#: the dispatcher, so for the hang cell to actually expire it the lease
#: must sit below the injected 15s sleep — pin it to the 1s floor (honest
#: loopback chunks of tiny spartan proofs finish in milliseconds)
REMOTE_FAST = RetryPolicy(
    max_attempts=3,
    backoff_base_seconds=0.001,
    lease_floor_seconds=1.0,
    lease_multiplier=0.001,
)


def make_service(tmp_path, executor, **kwargs):
    registry = CircuitRegistry()
    keystore = KeyStore(root=str(tmp_path / "keys"), registry=registry)
    kwargs.setdefault("retry_policy", FAST)
    return ProvingService(
        workers=2,
        registry=registry,
        keystore=keystore,
        executor=executor,
        chunk_policy=GroupChunkPolicy(
            workers=2, min_dispatch_seconds=0.0, target_chunk_seconds=0.0001
        ),
        **kwargs,
    )


def submit_batch(svc, n=6, seed=0):
    rng = random.Random(seed)
    ids = []
    for _ in range(n):
        x = [[rng.randrange(-3, 4) for _ in range(4)] for _ in range(3)]
        w = [[rng.randrange(-3, 4) for _ in range(2)] for _ in range(4)]
        ids.append(svc.submit(x, w, strategy="crpc_psq", backend="spartan"))
    return ids


def install(monkeypatch, tmp_path, *specs):
    plan = FaultPlan(list(specs), state_dir=str(tmp_path / "faults"))
    monkeypatch.setenv(ENV_VAR, plan.to_json())
    return plan


class TestFaultMatrix:
    """One injected fault per cell; the batch must end structured."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("kind", FAULTS)
    def test_cell(self, tmp_path, monkeypatch, executor, kind):
        target = 2  # job id the targeted faults single out
        # Remote workers only receive specs explicitly addressed to their
        # tier (scoped_env strips everything else from the launch env).
        tier = "remote" if executor == "remote" else None
        if kind == "poison":
            # fires on *every* attempt: must end in quarantine, with the
            # other five jobs still proving and verifying
            install(
                monkeypatch, tmp_path,
                FaultSpec(kind="poison", job_id=target, times=None, tier=tier),
            )
        elif kind == "missing_key":
            # not retryable: the dispatch tiers go chunk-fatal and fall
            # back inline (budget: one firing per dispatched chunk); the
            # inline tiers fail exactly one job, keeping the rest
            times = 2 if executor in DISPATCH_TIERS else 1
            install(
                monkeypatch, tmp_path,
                FaultSpec(kind="missing_key", times=times, tier=tier),
            )
        else:
            # transient (fires once): retries/leases must fully recover
            install(
                monkeypatch, tmp_path,
                FaultSpec(kind=kind, times=1, seconds=15.0, tier=tier),
            )
        kwargs = {}
        procs = []
        if executor == "remote":
            # Launched *after* install(): the plan must be in the env the
            # loopback workers inherit (remote-tier specs only).
            from repro.core.remote_worker import launch_loopback_workers

            addrs, procs = launch_loopback_workers(2)
            kwargs["remote_workers"] = addrs
            kwargs["retry_policy"] = REMOTE_FAST
        svc = make_service(tmp_path, executor, **kwargs)
        ids = submit_batch(svc)
        try:
            report = svc.run(verify=True)
        finally:
            svc.close()
            stop_workers(procs)

        statuses = {j: o.status for j, o in report.job_outcomes.items()}
        assert set(statuses) == set(ids)
        assert not report.errors  # never a group-fatal raw failure
        if kind == "poison":
            assert statuses.pop(target) == "quarantined"
            (poison,) = report.quarantined()
            assert poison.job_id == target
            assert "poison" in (poison.error or "")
            assert set(statuses.values()) == {"ok"}
            assert report.verified is False  # a job is missing a proof...
            assert svc.verify_report(report)  # ...but the others verify
        elif kind == "missing_key" and executor not in DISPATCH_TIERS:
            # exactly one inline job failed, typed, first-hit job
            failed = [j for j, s in statuses.items() if s == "failed"]
            assert len(failed) == 1
            assert "missing" in (
                report.job_outcomes[failed[0]].error or ""
            ).lower()
            assert svc.verify_report(report)
        else:
            # full recovery: every proof served and verified
            assert set(statuses.values()) == {"ok"}
            assert report.verified is True
            assert len(report.results) == len(ids)
            if kind == "missing_key":  # dispatch tier recovered inline
                assert any(
                    f"{executor}->inline" in f for f in report.fallbacks
                )
            if kind in ("crash", "hang") and executor != "process":
                # the injected failure burned a visible attempt
                assert any(
                    o.attempts > 1 for o in report.job_outcomes.values()
                )

    def test_no_fault_plan_is_inert(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        svc = make_service(tmp_path, "serial")
        submit_batch(svc, n=2)
        report = svc.run(verify=True)
        assert report.verified is True
        assert all(o.attempts == 1 for o in report.job_outcomes.values())


class TestDegradationLadder:
    def test_repeated_pool_breakage_flips_to_thread(
        self, tmp_path, monkeypatch
    ):
        """A process service whose pool keeps dying degrades to the
        thread tier — and the thread tier then serves cleanly once the
        (process-only) fault stops firing."""
        install(
            monkeypatch, tmp_path, FaultSpec(kind="crash", times=None)
        )
        svc = make_service(
            tmp_path,
            "process",
            retry_policy=RetryPolicy(
                max_attempts=1,
                backoff_base_seconds=0.001,
                lease_floor_seconds=60.0,
                bisect=False,
                max_pool_breakages=2,
            ),
        )
        submit_batch(svc, n=2)
        svc.run()
        assert svc.executor == "process"  # one breakage: still trying
        submit_batch(svc, n=2)
        report = svc.run()
        assert svc.executor == "thread"
        assert any("process->thread" in f for f in report.fallbacks)
        monkeypatch.delenv(ENV_VAR)
        ids = submit_batch(svc, n=2)
        report = svc.run(verify=True)
        assert report.verified is True
        assert [r.job_id for r in report.results] == ids
        svc.close()

    def test_fallback_disabled_reports_instead(self, tmp_path, monkeypatch):
        """``fallback=False``: chunk-fatal errors stay in the report (no
        inline re-serve, no executor flip) — failures loud, as asked."""
        install(monkeypatch, tmp_path, FaultSpec(kind="missing_key", times=2))
        svc = make_service(tmp_path, "process", fallback=False)
        submit_batch(svc)
        report = svc.run()
        svc.close()
        assert report.errors  # typed chunk errors surfaced, not healed
        assert not report.fallbacks
        assert all(
            "missing" in msg.lower() for msg in report.errors.values()
        )
        assert svc.executor == "process"


class TestIdempotentShutdown:
    def test_executor_shutdown_idempotent(self, tmp_path):
        ex = ProcessProvingExecutor(workers=1, keystore_root=str(tmp_path))
        ex.shutdown()  # before any pool exists
        ex.shutdown()
        x, w = rand_mats(2, 2, 2, seed=0)
        from repro import serialize

        blob = serialize.prove_jobs_to_bytes([(0, x, w, "crpc_psq", "spartan")])
        outcome = ex.run([(("g", 0), blob)])
        assert ("g", 0) in outcome.results
        ex.shutdown()
        ex.shutdown()  # after use, repeatedly

    def test_service_close_idempotent_and_reusable(self, tmp_path):
        svc = make_service(tmp_path, "process")
        ids = submit_batch(svc, n=2)
        assert len(svc.run().results) == len(ids)
        svc.close()
        svc.close()
        # a batch after close() lazily rebuilds the pool
        ids = submit_batch(svc, n=2, seed=1)
        report = svc.run(verify=True)
        assert report.verified is True
        svc.close()


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        p = RetryPolicy()
        tag = (("k",), 0)
        seq = [p.backoff_seconds(tag, a) for a in (1, 2, 3)]
        assert seq == [p.backoff_seconds(tag, a) for a in (1, 2, 3)]
        assert seq[0] < seq[1] < seq[2]  # exponential growth
        for a, s in enumerate(seq, start=1):
            base = min(
                p.backoff_base_seconds * p.backoff_multiplier ** (a - 1),
                p.backoff_max_seconds,
            )
            assert base <= s <= base * (1 + p.jitter_fraction)
        # jitter decorrelates chunks without breaking determinism
        assert p.backoff_seconds((("k",), 1), 1) != seq[0]

    def test_retryability_follows_the_taxonomy(self):
        p = RetryPolicy()
        assert p.is_retryable(WorkerCrash("x"))
        assert p.is_retryable(ChunkTimeout("x"))
        assert p.is_retryable(CorruptEnvelope("x"))
        assert not p.is_retryable(MissingKey("x"))
        assert not p.is_retryable(PoisonJob("x"))
        assert not p.is_retryable(ProvingError("x"))

    def test_lease_floor_and_scaling(self):
        p = RetryPolicy(lease_floor_seconds=30.0, lease_multiplier=40.0)
        assert p.lease_seconds(0.001, 1) == 30.0  # floor
        assert p.lease_seconds(2.0, 3) == 40.0 * 6.0  # scales with work
        assert RetryPolicy(lease_multiplier=0.0).lease_seconds(9.0, 9) is None
        assert BARE_POLICY.max_attempts == 1
        assert BARE_POLICY.lease_seconds(9.0, 9) is None

    def test_chunk_lease_expiry_and_renew(self):
        lease = ChunkLease(tag="t", timeout_seconds=10.0, started=100.0)
        assert not lease.expired(now=105.0)
        assert lease.remaining(now=105.0) == 5.0
        assert lease.expired(now=110.0)
        assert lease.remaining(now=111.0) == 0.0
        renewed = lease.renew()
        assert renewed.attempt == 2 and renewed.timeout_seconds == 10.0
        forever = ChunkLease(tag="t", timeout_seconds=None)
        assert not forever.expired() and forever.remaining() is None


class TestErrorTaxonomy:
    def test_wrap_error_classification(self):
        from concurrent.futures import TimeoutError as FuturesTimeout
        from concurrent.futures.process import BrokenProcessPool

        assert isinstance(wrap_error(BrokenProcessPool("b")), WorkerCrash)
        assert isinstance(wrap_error(FuturesTimeout()), ChunkTimeout)
        assert isinstance(wrap_error(KeyError("k")), MissingKey)
        generic = wrap_error(ZeroDivisionError("den"), job_id=7)
        assert type(generic) is ProvingError
        assert generic.job_id == 7
        assert "ZeroDivisionError" in str(generic)

    def test_wrap_error_passthrough_merges_context(self):
        err = ChunkTimeout("late", deadline_seconds=1.5)
        same = wrap_error(err, job_id=3, attempts=2)
        assert same is err and err.job_id == 3 and err.attempts == 2

    def test_errors_pickle_with_context(self):
        err = PoisonJob(
            "bad job", circuit_key=(2, 2, 2, "s", "b"), job_id=5, attempts=3
        )
        back = pickle.loads(pickle.dumps(err))
        assert type(back) is PoisonJob
        assert (back.job_id, back.attempts) == (5, 3)
        assert back.circuit_key == (2, 2, 2, "s", "b")
        assert "job=5" in str(back)

    def test_corrupt_envelope_is_a_value_error(self):
        assert issubclass(CorruptEnvelope, ValueError)


class TestFaultPlanHarness:
    def test_roundtrip_and_install(self, tmp_path, monkeypatch):
        plan = FaultPlan(
            [FaultSpec(kind="crash", job_id=1, times=2)],
            state_dir=str(tmp_path),
        )
        again = FaultPlan.from_json(plan.to_json())
        assert vars(again.specs[0]) == vars(plan.specs[0])
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        from repro.core.faultinject import active_plan

        assert active_plan().specs[0].kind == "crash"
        monkeypatch.delenv(ENV_VAR)
        assert active_plan() is None

    def test_finite_times_counted_exactly(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(kind="poison", job_id=9, times=2)],
            state_dir=str(tmp_path),
        )
        fired = 0
        for _ in range(5):
            try:
                plan.fire_inline(9, "s")
            except ProvingError:
                fired += 1
        assert fired == 2  # budget spent, then inert
        assert plan.fired(0) == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="gremlins")

    def test_mangled_envelope_fails_typed(self):
        from repro import serialize

        plan = FaultPlan([FaultSpec(kind="corrupt", times=None)])
        jobs = [(0, [[1]], [[1]], "s", "b")]
        blob = serialize.job_results_to_bytes([(0, b"ok", 0.1)])
        mangled = plan.mangle_results(blob, jobs)
        assert mangled != blob
        with pytest.raises(CorruptEnvelope):
            serialize.job_results_from_bytes(mangled)
