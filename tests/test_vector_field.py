"""Vectorized field engine (`repro.field.vector`): scalar equivalence.

Every vectorized operation is checked against the scalar big-int oracle
over random vectors *and* adversarial lanes (0, 1, p-1, unreduced >= p
inputs, mixed batch lengths), for every engine available on this host
(native C kernels and/or the numpy digit engine).  The end-to-end tests
force `REPRO_FIELD_BACKEND` each way and require byte-identical Groth16
and Spartan proofs.

Without numpy the vector backend is unavailable; the engine-parametrised
tests then skip and the backend-selection tests assert the scalar
degradation path.
"""

import os
import random
import secrets

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import vector
from repro.field.prime_field import BN254_FR_MODULUS, batch_inv_mod, inv_mod
from repro.field.ntt import clear_ntt_plan_cache, get_plan

R = BN254_FR_MODULUS

IMPLS = vector.available_impls()
needs_numpy = pytest.mark.skipif(
    not vector.HAVE_NUMPY, reason="numpy not installed"
)

# Lanes that historically break limb/digit arithmetic: boundaries of the
# canonical range and unreduced / negative inputs (to_limbs must normalise).
ADVERSARIAL = [0, 1, 2, R - 1, R - 2, R, R + 3, 2 * R + 1, -5, -R, 1 << 255]
LENGTHS = [0, 1, 2, 3, 7, 64, 255, 1000]

elems = st.integers(min_value=0, max_value=R - 1)


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-wide backend as it found it."""
    state = dict(vector._state)
    yield
    vector._state.clear()
    vector._state.update(state)


def _vectors(rng, n):
    """A test vector of length n mixing random and adversarial lanes."""
    vals = [rng.randrange(R) for _ in range(n)]
    for i, adv in enumerate(ADVERSARIAL):
        if i < n:
            vals[i] = adv
    return vals


impl_param = pytest.mark.parametrize(
    "impl", IMPLS if IMPLS else [pytest.param(None, marks=pytest.mark.skip(
        reason="no vector engine available"))]
)


@needs_numpy
class TestConversions:
    def test_roundtrip_normalises(self):
        vals = ADVERSARIAL + [123456789]
        limbs = vector.to_limbs(vals)
        assert vector.from_limbs(limbs) == [v % R for v in vals]

    def test_empty(self):
        assert vector.from_limbs(vector.to_limbs([])) == []


@impl_param
class TestElementwiseOps:
    @pytest.mark.parametrize("n", LENGTHS)
    def test_add_sub_mul(self, impl, n, rng):
        vector.set_backend("vector", impl)
        a = _vectors(rng, n)
        b = list(reversed(_vectors(rng, n)))
        al, bl = vector.to_limbs(a), vector.to_limbs(b)
        assert vector.from_limbs(vector.vec_add(al, bl)) == [
            (x + y) % R for x, y in zip(a, b)
        ]
        assert vector.from_limbs(vector.vec_sub(al, bl)) == [
            (x - y) % R for x, y in zip(a, b)
        ]
        assert vector.from_limbs(vector.vec_mul(al, bl)) == [
            x * y % R for x, y in zip(a, b)
        ]

    @pytest.mark.parametrize("s", [0, 1, R - 1, 7, R + 5])
    def test_mul_scalar(self, impl, s, rng):
        vector.set_backend("vector", impl)
        a = _vectors(rng, 100)
        got = vector.from_limbs(vector.vec_mul_scalar(vector.to_limbs(a), s))
        assert got == [x % R * (s % R) % R for x in a]

    @pytest.mark.parametrize("n", LENGTHS)
    def test_mul_prepared(self, impl, n, rng):
        vector.set_backend("vector", impl)
        a = _vectors(rng, n)
        w = list(reversed(_vectors(rng, n)))
        prep = vector.prepare_multipliers(w)
        got = vector.from_limbs(vector.vec_mul_prepared(vector.to_limbs(a), prep))
        assert got == [x % R * (y % R) % R for x, y in zip(a, w)]

    @pytest.mark.parametrize("n", LENGTHS)
    def test_vec_sum(self, impl, n, rng):
        vector.set_backend("vector", impl)
        a = _vectors(rng, n)
        assert vector.vec_sum(vector.to_limbs(a)) == sum(v % R for v in a) % R

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 64, 255])
    def test_batch_inv(self, impl, n, rng):
        vector.set_backend("vector", impl)
        a = [rng.randrange(1, R) for _ in range(n)]
        a[0] = 1
        if n > 2:
            a[2] = R - 1
        got = vector.from_limbs(vector.batch_inv(vector.to_limbs(a)))
        assert got == batch_inv_mod(a, R)

    def test_batch_inv_zero_lane_raises(self, impl):
        vector.set_backend("vector", impl)
        arr = vector.to_limbs([3, 0, 5])
        with pytest.raises(ZeroDivisionError):
            vector.batch_inv(arr)

    @given(vals=st.lists(elems, min_size=1, max_size=40))
    @settings(max_examples=10)
    def test_property_mul_matches_scalar(self, impl, vals):
        vector.set_backend("vector", impl)
        al = vector.to_limbs(vals)
        sq = vector.from_limbs(vector.vec_mul(al, al))
        assert sq == [v * v % R for v in vals]


@impl_param
class TestNTTEquivalence:
    @pytest.mark.parametrize("n", [64, 256, 1024])
    def test_ntt_matches_scalar(self, impl, n, rng):
        vals = _vectors(rng, n)
        vector.set_backend("scalar")
        clear_ntt_plan_cache()
        plan = get_plan(n)
        want_f = plan.ntt(vals)
        want_i = plan.ntt(vals, inverse=True)
        vector.set_backend("vector", impl)
        assert plan.ntt(vals) == want_f
        assert plan.ntt(vals, inverse=True) == want_i

    @pytest.mark.parametrize("n", [64, 512])
    def test_coset_roundtrip_matches_scalar(self, impl, n, rng):
        coeffs = _vectors(rng, n - 3)
        vector.set_backend("scalar")
        clear_ntt_plan_cache()
        plan = get_plan(n)
        want_ev = plan.coset_ntt(coeffs, 7)
        want_back = plan.coset_intt(want_ev, 7)
        vector.set_backend("vector", impl)
        got_ev = plan.coset_ntt(coeffs, 7)
        assert got_ev == want_ev
        assert plan.coset_intt(got_ev, 7) == want_back
        assert want_back[: len(coeffs)] == [v % R for v in coeffs]

    def test_below_floor_uses_scalar_path(self, impl):
        # Tiny transforms must bypass the vector engine entirely.
        vector.set_backend("vector", impl)
        clear_ntt_plan_cache()
        plan = get_plan(4)
        assert plan.vec_state() is None
        assert plan.ntt([1, 2, 3, 4]) is not None


@impl_param
class TestCSRMatvec:
    def _instance(self, rng, rows=300, wires=128, with_empty=True):
        from repro.r1cs.system import R1CSInstance

        def mk():
            out = []
            for q in range(rows):
                if with_empty and q % 13 == 0:
                    out.append([])
                else:
                    out.append(
                        [
                            (rng.randrange(wires), rng.randrange(R))
                            for _ in range(rng.randrange(1, 7))
                        ]
                    )
            return out

        return R1CSInstance(wires, 1, mk(), mk(), mk())

    def test_matvec_matches_scalar(self, impl, rng):
        inst = self._instance(rng)
        z = _vectors(rng, 128)
        vector.set_backend("scalar")
        want = [inst.matvec(w, z) for w in "ABC"]
        want_products = list(inst.eval_products(z))
        vector.set_backend("vector", impl)
        inst.invalidate_flat_cache()
        # Force the kernel on regardless of instance size.
        old = dict(vector.MATVEC_MIN_TERMS)
        vector.MATVEC_MIN_TERMS[impl] = 1
        try:
            assert [inst.matvec(w, z) for w in "ABC"] == want
            assert list(inst.eval_products(z)) == want_products
            assert inst.flat("A").vec_kernel() is not None
        finally:
            vector.MATVEC_MIN_TERMS.update(old)
            inst.invalidate_flat_cache()

    def test_is_satisfied_both_ways(self, impl, rng):
        from repro.r1cs import LC, ConstraintSystem

        cs = ConstraintSystem()
        x = cs.alloc_public("x", 3)
        cur = x
        for i in range(40):
            cur = cs.mul(LC.from_wire(cur), LC.from_wire(cur), f"m{i}")
        inst = cs.specialize(1)
        good = cs.assignment()
        bad = list(good)
        bad[-1] = (bad[-1] + 1) % R
        vector.set_backend("vector", impl)
        old = dict(vector.MATVEC_MIN_TERMS)
        vector.MATVEC_MIN_TERMS[impl] = 1
        try:
            assert inst.is_satisfied(good)
            assert not inst.is_satisfied(bad)
        finally:
            vector.MATVEC_MIN_TERMS.update(old)
            inst.invalidate_flat_cache()
        vector.set_backend("scalar")
        assert inst.is_satisfied(good)
        assert not inst.is_satisfied(bad)


@impl_param
class TestSumcheckEquivalence:
    @pytest.mark.parametrize("kernel,num_tables", [
        ("prod2", 2), ("prod3", 3), ("eq_abc", 4),
    ])
    def test_rounds_match_scalar(self, impl, kernel, num_tables, rng):
        from repro.spartan.sumcheck_fast import _KERNELS, sumcheck_prove
        from repro.spartan.transcript import Transcript

        n = 64
        tables = [[rng.randrange(R) for _ in range(n)] for _ in range(num_tables)]
        _, _, degree = _KERNELS[kernel]
        if kernel == "prod2":
            claim = sum(a * b for a, b in zip(*tables)) % R
        elif kernel == "prod3":
            claim = sum(a * b * c for a, b, c in zip(*tables)) % R
        else:
            claim = sum(
                e * (a * b - c) for e, a, b, c in zip(*tables)
            ) % R
        vector.set_backend("scalar")
        want = sumcheck_prove(
            [list(t) for t in tables], None, degree, claim, Transcript(),
            b"t", kernel=kernel,
        )
        vector.set_backend("vector", impl)
        old = dict(vector.SUMCHECK_MIN_HALF)
        vector.SUMCHECK_MIN_HALF[impl] = 1
        try:
            got = sumcheck_prove(
                [list(t) for t in tables], None, degree, claim, Transcript(),
                b"t", kernel=kernel,
            )
        finally:
            vector.SUMCHECK_MIN_HALF.update(old)
        assert got[0].round_polys == want[0].round_polys
        assert got[1] == want[1]
        assert got[2] == want[2]


class TestBackendSelection:
    def test_env_parsing_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIELD_BACKEND", "gpu")
        vector.set_backend(None)
        with pytest.raises(ValueError):
            vector.get_backend()

    def test_env_scalar_forces_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIELD_BACKEND", "scalar")
        vector.set_backend(None)
        assert vector.get_backend() == "scalar"
        assert vector.active_impl() is None

    def test_env_auto_prefers_vector_when_available(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIELD_BACKEND", "auto")
        vector.set_backend(None)
        if IMPLS:
            assert vector.get_backend() == "vector"
            assert vector.active_impl() == IMPLS[0]
        else:
            assert vector.get_backend() == "scalar"

    def test_vector_degrades_to_scalar_without_engines(self, monkeypatch):
        if IMPLS:
            pytest.skip("vector engines available on this host")
        vector.set_backend("vector")
        assert vector.get_backend() == "scalar"

    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError):
            vector.set_backend("vector", "quantum")

    @needs_numpy
    def test_native_pin_respected(self, monkeypatch):
        if "numpy" not in IMPLS:
            pytest.skip("numpy engine unavailable")
        vector.set_backend("vector", "numpy")
        assert vector.active_impl() == "numpy"


def _mul_chain_circuit(n_muls=70):
    from repro.r1cs import LC, ConstraintSystem

    cs = ConstraintSystem()
    x = cs.alloc_public("x", 3)
    cur = x
    for i in range(n_muls):
        cur = cs.mul(LC.from_wire(cur), LC.from_wire(cur), f"m{i}")
    return cs


@pytest.mark.slow
@needs_numpy
class TestProofByteIdentity:
    """Proof bytes must not depend on the field backend."""

    def test_groth16_byte_identical(self):
        import repro.serialize as serialize
        from repro.groth16 import prove, setup, verify

        cs = _mul_chain_circuit()
        inst = cs.specialize(1)
        assignment = cs.assignment()
        vector.set_backend("scalar")
        srng = random.Random(42)
        kp = setup(inst, rng=lambda: srng.getrandbits(256))

        def make(backend, impl=None):
            vector.set_backend(backend, impl)
            inst.invalidate_flat_cache()
            prng = random.Random(1234)
            pf = prove(kp.pk, inst, assignment, rng=lambda: prng.getrandbits(256))
            return serialize.groth16_proof_to_bytes(pf), pf

        ref, pf = make("scalar")
        assert verify(kp.vk, cs.public_inputs(), pf)
        for impl in IMPLS:
            got, _ = make("vector", impl)
            assert got == ref, f"{impl} proof differs from scalar"

    def test_spartan_byte_identical(self, monkeypatch):
        import repro.serialize as serialize
        from repro.spartan import Transcript, prove, verify

        cs = _mul_chain_circuit()
        inst = cs.specialize(1)
        assignment = cs.assignment()

        def make(backend, impl=None):
            vector.set_backend(backend, impl)
            inst.invalidate_flat_cache()
            prng = random.Random(777)
            monkeypatch.setattr(
                secrets, "randbits", lambda n: prng.getrandbits(n)
            )
            return serialize.spartan_proof_to_bytes(
                prove(inst, assignment, Transcript())
            )

        ref = make("scalar")
        for impl in IMPLS:
            assert make("vector", impl) == ref, f"{impl} differs from scalar"
        vector.set_backend("scalar")
        monkeypatch.undo()
        pf = serialize.spartan_proof_from_bytes(ref)
        assert verify(inst, cs.public_inputs(), pf, Transcript())

    def test_env_backend_forced_each_way(self, monkeypatch):
        """The documented knob itself: REPRO_FIELD_BACKEND=scalar|vector."""
        import repro.serialize as serialize
        from repro.spartan import Transcript, prove

        cs = _mul_chain_circuit(20)
        inst = cs.specialize(1)
        assignment = cs.assignment()
        out = {}
        for mode in ("scalar", "vector"):
            monkeypatch.setenv("REPRO_FIELD_BACKEND", mode)
            vector.set_backend(None)  # re-resolve from the environment
            inst.invalidate_flat_cache()
            prng = random.Random(31337)
            monkeypatch.setattr(
                secrets, "randbits", lambda n: prng.getrandbits(n)
            )
            out[mode] = serialize.spartan_proof_to_bytes(
                prove(inst, assignment, Transcript())
            )
        assert out["scalar"] == out["vector"]
