"""Proving service and detached verification.

Covers the serving-stack contract: bundles and verifier artifacts are
plain bytes that reconstruct a working ``MatmulVerifier`` in a fresh
in-process state *and* in a separate OS process, and the service amortises
setup across same-circuit jobs.
"""

import os
import subprocess
import sys

import pytest
from _matutil import rand_mats

from repro.core import (
    MatmulProofBundle,
    MatmulProver,
    MatmulVerifier,
    ProvingService,
)
from repro.core.artifacts import CircuitRegistry, KeyStore
from repro.field.prime_field import BN254_FR_MODULUS

R = BN254_FR_MODULUS
SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def fresh_stores(tmp_path=None):
    registry = CircuitRegistry()
    root = str(tmp_path) if tmp_path is not None else None
    return registry, KeyStore(root=root, registry=registry)


@pytest.mark.parametrize("backend", ["groth16", "spartan"])
class TestDetachedVerification:
    @pytest.fixture
    def proved(self, backend):
        registry, keystore = fresh_stores()
        prover = MatmulProver(
            2, 3, 2, backend=backend, registry=registry, keystore=keystore
        )
        bundle = prover.prove(*rand_mats(2, 3, 2, seed=4))
        return prover.export_verifier(), bundle.to_bytes()

    def _fresh_verifier(self, artifact):
        # A brand-new registry: nothing shared with the proving side
        # except the bytes.
        return MatmulVerifier.from_bytes(artifact, registry=CircuitRegistry())

    def test_accepts_valid_bundle(self, backend, proved):
        artifact, blob = proved
        assert self._fresh_verifier(artifact).verify_bytes(blob)

    def test_rejects_tampered_y(self, backend, proved):
        artifact, blob = proved
        bundle = MatmulProofBundle.from_bytes(blob)
        bundle.y[0][0] = (bundle.y[0][0] + 1) % R
        assert not self._fresh_verifier(artifact).verify(bundle)

    def test_rejects_tampered_z(self, backend, proved):
        artifact, blob = proved
        bundle = MatmulProofBundle.from_bytes(blob)
        bundle.z = (bundle.z + 1) % R
        verifier = self._fresh_verifier(artifact)
        if backend == "spartan":
            # z is Fiat-Shamir-bound to commitment || Y.
            assert not verifier.verify(bundle)
        else:
            # Groth16 bakes z into the CRS; the bundle field is advisory
            # and the proof itself must still pass.
            assert verifier.verify(bundle)

    def test_rejects_tampered_commitment(self, backend, proved):
        if backend == "groth16":
            pytest.skip("groth16 bundles carry no commitment")
        artifact, blob = proved
        bundle = MatmulProofBundle.from_bytes(blob)
        bundle.commitment = b"\x00" * len(bundle.commitment)
        assert not self._fresh_verifier(artifact).verify(bundle)

    def test_rejects_shape_mismatch(self, backend, proved):
        artifact, _ = proved
        registry, keystore = fresh_stores()
        other = MatmulProver(
            2, 2, 2, backend=backend, registry=registry, keystore=keystore
        )
        bundle = other.prove(*rand_mats(2, 2, 2, seed=5))
        assert not self._fresh_verifier(artifact).verify(bundle)

    def test_cross_process(self, backend, proved, tmp_path):
        """A verifier built in a separate OS process from serialized
        artifacts alone accepts the bundle and rejects a tampered one."""
        artifact, blob = proved
        art_path = tmp_path / "verifier.bin"
        ok_path = tmp_path / "bundle.bin"
        bad_bundle = MatmulProofBundle.from_bytes(blob)
        bad_bundle.y[0][0] = (bad_bundle.y[0][0] + 1) % R
        bad_path = tmp_path / "tampered.bin"
        art_path.write_bytes(artifact)
        ok_path.write_bytes(blob)
        bad_path.write_bytes(bad_bundle.to_bytes())

        code = (
            "import sys\n"
            "from repro.core import MatmulVerifier\n"
            "v = MatmulVerifier.from_bytes(open(sys.argv[1], 'rb').read())\n"
            "ok = v.verify_bytes(open(sys.argv[2], 'rb').read())\n"
            "bad = v.verify_bytes(open(sys.argv[3], 'rb').read())\n"
            "sys.exit(0 if (ok and not bad) else 1)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", code, str(art_path), str(ok_path), str(bad_path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr


class TestProvingService:
    def test_batch_mixed_shapes_and_backends(self):
        registry, keystore = fresh_stores()
        svc = ProvingService(workers=2, registry=registry, keystore=keystore)
        for seed in range(3):
            svc.submit(*rand_mats(2, 3, 2, seed=seed), backend="groth16")
        svc.submit(*rand_mats(2, 2, 2, seed=9), backend="groth16")
        svc.submit(*rand_mats(2, 3, 2, seed=10), backend="spartan")
        assert svc.pending == 5
        report = svc.run(verify=True)
        assert svc.pending == 0
        assert report.verified
        assert len(report.results) == 5
        assert len(report.groups) == 3
        # one setup per groth16 circuit, none for spartan
        assert keystore.setups == 2

    def test_results_ordered_and_serialized(self):
        registry, keystore = fresh_stores()
        svc = ProvingService(workers=1, registry=registry, keystore=keystore)
        ids = [
            svc.submit(*rand_mats(2, 2, 2, seed=s), backend="spartan")
            for s in range(3)
        ]
        report = svc.run()
        assert [r.job_id for r in report.results] == ids
        for r in report.results:
            back = MatmulProofBundle.from_bytes(r.bundle_bytes)
            assert back.y == r.bundle.y
        assert report.proofs_per_second > 0

    def test_setup_amortized_across_batch(self):
        registry, keystore = fresh_stores()
        svc = ProvingService(workers=1, registry=registry, keystore=keystore)
        for seed in range(4):
            svc.submit(*rand_mats(2, 3, 2, seed=seed), backend="groth16")
        report = svc.run(verify=True)
        assert report.verified
        assert keystore.setups == 1
        assert registry.builds == 1

    def test_setup_not_rebilled_on_second_batch(self):
        registry, keystore = fresh_stores()
        svc = ProvingService(workers=1, registry=registry, keystore=keystore)
        svc.submit(*rand_mats(2, 2, 2, seed=1), backend="groth16")
        first = svc.run()
        assert first.setup_seconds > 0
        svc.submit(*rand_mats(2, 2, 2, seed=2), backend="groth16")
        second = svc.run()
        assert second.setup_seconds == 0.0

    def test_forged_hyrax_shape_header_verifies_false(self):
        """A deserializable bundle whose commitment shape disagrees with
        its row count must be rejected by the codec, not crash msm."""
        import struct

        from repro import serialize as ser

        registry, keystore = fresh_stores()
        prover = MatmulProver(
            2, 2, 2, backend="spartan", registry=registry, keystore=keystore
        )
        bundle = prover.prove(*rand_mats(2, 2, 2))
        proof_blob = bytearray(ser.spartan_proof_to_bytes(bundle.proof))
        n_rows, num_vars, row_vars = struct.unpack(">III", proof_blob[:12])
        proof_blob[:12] = struct.pack(">III", 0, num_vars, row_vars)
        with pytest.raises(ser.SerializationError):
            ser.spartan_proof_from_bytes(bytes(proof_blob))
        proof_blob[:12] = struct.pack(">III", n_rows, 60, row_vars)
        with pytest.raises(ser.SerializationError):
            ser.spartan_proof_from_bytes(bytes(proof_blob))
        # and through the serving-loop contract: False, not a crash
        verifier = prover.verifier()
        wire = bytearray(bundle.to_bytes())
        idx = bytes(wire).rindex(bytes(ser.spartan_proof_to_bytes(bundle.proof)))
        wire[idx:idx + 12] = struct.pack(">III", 0, num_vars, row_vars)
        assert not verifier.verify_bytes(bytes(wire))

    def test_poisoned_group_does_not_lose_other_groups(self):
        registry, keystore = fresh_stores()
        svc = ProvingService(workers=1, registry=registry, keystore=keystore)
        good = svc.submit(*rand_mats(2, 2, 2, seed=1), backend="spartan")
        # Passes shape validation but blows up at proving time.
        bad = svc.submit([["x", "y"], [1, 2]], [[1], [2]], backend="spartan")
        report = svc.run(verify=True)
        assert [r.job_id for r in report.results] == [good]
        # The deterministic per-job failure is quarantined (typed, with
        # the attempt count), not escalated to a group error.
        assert not report.errors
        (poison,) = report.quarantined()
        assert poison.job_id == bad
        assert "ValueError" in (poison.error or "")
        # A batch with failures is never "verified"...
        assert report.verified is False
        # ...but the jobs that did complete still check out.
        assert svc.verify_report(report)

    def test_malformed_direct_job_reported_not_fatal(self):
        from repro.core import ProveJob

        registry, keystore = fresh_stores()
        svc = ProvingService(workers=1, registry=registry, keystore=keystore)
        x, w = rand_mats(2, 2, 2, seed=3)
        jobs = [
            ProveJob(job_id=0, x=x, w=w, backend="spartan"),
            ProveJob(job_id=1, x=[[1, 2], [3]], w=[[1], [2]], backend="spartan"),
        ]
        report = svc.prove_batch(jobs, verify=True)
        assert [r.job_id for r in report.results] == [0]
        assert list(report.invalid_jobs) == [1]
        assert report.verified is False
        assert svc.verify_report(report)

    def test_unknown_backend_or_strategy_rejected_at_submit(self):
        svc = ProvingService(registry=CircuitRegistry(), keystore=KeyStore())
        with pytest.raises(ValueError):
            svc.submit([[1]], [[1]], backend="grot16")
        with pytest.raises(ValueError):
            svc.submit([[1]], [[1]], strategy="quantum")
        assert svc.pending == 0

    def test_empty_and_ragged_matrices_rejected(self):
        svc = ProvingService(registry=CircuitRegistry(), keystore=KeyStore())
        with pytest.raises(ValueError):
            svc.submit([], [])
        with pytest.raises(ValueError):
            svc.submit([[1, 2], [3]], [[1], [2]])
        assert svc.pending == 0

    def test_exported_verifier_checks_served_bundles(self):
        registry, keystore = fresh_stores()
        svc = ProvingService(registry=registry, keystore=keystore)
        svc.submit(*rand_mats(2, 2, 2, seed=1), backend="groth16")
        report = svc.run()
        (key,) = report.groups
        artifact = svc.export_verifier(key)
        verifier = MatmulVerifier.from_bytes(artifact, registry=CircuitRegistry())
        assert verifier.verify_bytes(report.results[0].bundle_bytes)

    def test_bad_shape_rejected_at_submit(self):
        svc = ProvingService(registry=CircuitRegistry(), keystore=KeyStore())
        with pytest.raises(ValueError):
            svc.submit([[1, 2]], [[1], [2], [3]])
        assert svc.pending == 0


class TestInferenceVerifyHardening:
    def test_hostile_layer_metadata_returns_false(self):
        """Tampered strategy/backend/shape in a layer bundle must make
        VerifiableInference.verify return False, never raise."""
        from repro.zkml import InferenceProof, LayerProof, VerifiableInference

        registry, keystore = fresh_stores()
        # verify() never touches the model, so no qmodel is needed here.
        vi = VerifiableInference(
            None, backend="spartan", registry=registry, keystore=keystore
        )
        prover = MatmulProver(
            2, 2, 2, backend="spartan", registry=registry, keystore=keystore
        )
        bundle = prover.prove(*rand_mats(2, 2, 2))
        ok = InferenceProof(0, [], [LayerProof("l", bundle)])
        assert vi.verify(ok)

        for attr, value in (
            ("strategy", "crpc"),
            ("strategy", "bogus"),
            ("backend", "groth16"),
            ("shape", (5, 5, 5)),
        ):
            hostile = MatmulProofBundle.from_bytes(bundle.to_bytes())
            setattr(hostile, attr, value)
            proof = InferenceProof(0, [], [LayerProof("l", hostile)])
            assert not vi.verify(proof)


class TestWireHardening:
    def test_unknown_backend_name_rejected(self):
        from repro import serialize as ser

        blob = ser.verifier_artifact_to_bytes("starks", "crpc_psq", (2, 2, 2))
        with pytest.raises(ValueError):
            MatmulVerifier.from_bytes(blob)

    def test_non_utf8_backend_field_rejected(self):
        from repro import serialize as ser

        registry, keystore = fresh_stores()
        prover = MatmulProver(
            2, 2, 2, backend="spartan", registry=registry, keystore=keystore
        )
        blob = bytearray(prover.prove(*rand_mats(2, 2, 2)).to_bytes())
        # First field is the length-prefixed backend name; corrupt it.
        blob[4] = 0xFF
        with pytest.raises(ser.SerializationError):
            MatmulProofBundle.from_bytes(bytes(blob))

    def test_verify_bytes_returns_false_on_malformed_input(self):
        registry, keystore = fresh_stores()
        prover = MatmulProver(
            2, 2, 2, backend="spartan", registry=registry, keystore=keystore
        )
        prover.prove(*rand_mats(2, 2, 2))
        verifier = prover.verifier()
        # Untrusted bytes must never crash a serving loop: truncation,
        # garbage, and unreduced scalars all verify False.
        assert not verifier.verify_bytes(b"")
        assert not verifier.verify_bytes(b"garbage")
        blob = bytearray(prover.prove(*rand_mats(2, 2, 2, seed=1)).to_bytes())
        offset = 4 + 7 + 4 + 8 + 12  # names + shape header -> first y scalar
        blob[offset] = 0xFF  # scalar >= R
        assert not verifier.verify_bytes(bytes(blob))

    def test_huge_shape_header_rejected_cheaply(self):
        from repro import serialize as ser

        registry, keystore = fresh_stores()
        prover = MatmulProver(
            2, 2, 2, backend="spartan", registry=registry, keystore=keystore
        )
        blob = bytearray(prover.prove(*rand_mats(2, 2, 2)).to_bytes())
        # Shape header sits right after the two length-prefixed names.
        offset = 4 + 7 + 4 + 8  # "spartan" + "crpc_psq" blobs
        blob[offset:offset + 4] = (0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(ser.SerializationError):
            MatmulProofBundle.from_bytes(bytes(blob))
        blob[offset:offset + 4] = (0).to_bytes(4, "big")
        with pytest.raises(ser.SerializationError):
            MatmulProofBundle.from_bytes(bytes(blob))

    def test_verify_never_fabricates_keys(self):
        registry, keystore = fresh_stores()
        prover = MatmulProver(
            2, 2, 2, backend="groth16", registry=registry, keystore=keystore
        )
        bundle = prover.prove(*rand_mats(2, 2, 2))
        # A prover over an empty keystore must refuse, not silently run a
        # fresh setup whose key would reject the valid proof.
        other_reg, other_ks = fresh_stores()
        stranger = MatmulProver(
            2, 2, 2, backend="groth16", registry=other_reg, keystore=other_ks
        )
        with pytest.raises(KeyError):
            stranger.verify(bundle)
        assert other_ks.setups == 0
