"""Dense-polynomial algebra and Lagrange helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.prime_field import BN254_FR_MODULUS, fr_root_of_unity
from repro.poly.dense import (
    Poly,
    lagrange_coeffs_at,
    lagrange_interpolate,
    vanishing_poly,
)

R = BN254_FR_MODULUS
elems = st.integers(min_value=0, max_value=R - 1)
polys = st.builds(Poly, st.lists(elems, min_size=0, max_size=10))


class TestPolyAlgebra:
    @given(polys, polys)
    def test_add_commutes(self, p, q):
        assert p + q == q + p

    @given(polys, polys, polys)
    def test_mul_distributes(self, p, q, r):
        assert p * (q + r) == p * q + p * r

    @given(polys)
    def test_sub_self_is_zero(self, p):
        assert (p - p).is_zero()

    @given(polys, elems)
    def test_evaluation_is_homomorphism(self, p, x):
        q = Poly([1, 2, 3])
        assert (p * q)(x) == p(x) * q(x) % R
        assert (p + q)(x) == (p(x) + q(x)) % R

    def test_degree_conventions(self):
        assert Poly([]).degree == -1
        assert Poly([5]).degree == 0
        assert Poly([0, 0, 3]).degree == 2
        assert Poly([1, 0, 0]).degree == 0  # trailing zeros trimmed

    def test_monomial(self):
        p = Poly.monomial(3, 7)
        assert p.coeffs == (0, 0, 0, 7)

    def test_scalar_mul(self):
        assert Poly([1, 2]) * 3 == Poly([3, 6])
        assert 3 * Poly([1, 2]) == Poly([3, 6])

    @given(polys, polys)
    def test_divmod_reconstructs(self, p, d):
        if d.is_zero():
            with pytest.raises(ZeroDivisionError):
                p.divmod(d)
            return
        q, r = p.divmod(d)
        assert q * d + r == p
        assert r.degree < d.degree or r.is_zero()

    def test_floordiv_mod_operators(self):
        p = Poly([2, 0, 1])  # X^2 + 2
        d = Poly([1, 1])  # X + 1
        assert (p // d) * d + (p % d) == p

    def test_large_mul_uses_ntt_consistently(self):
        a = Poly(list(range(1, 40)))
        b = Poly(list(range(2, 45)))
        small = Poly(list(range(1, 10)))
        # Cross-check NTT path vs schoolbook path on overlapping sizes.
        assert (a * b)(12345) == a(12345) * b(12345) % R
        assert (a * small)(99) == a(99) * small(99) % R


class TestLagrange:
    @given(st.lists(elems, min_size=1, max_size=6, unique=True))
    def test_interpolation_hits_points(self, xs):
        ys = [(3 * x + 1) % R for x in xs]
        p = lagrange_interpolate(xs, ys)
        for x, y in zip(xs, ys):
            assert p(x) == y

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError):
            lagrange_interpolate([1, 1], [2, 3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lagrange_interpolate([1], [2, 3])

    def test_degree_bound(self):
        xs, ys = [1, 2, 3], [7, 7, 7]
        p = lagrange_interpolate(xs, ys)
        assert p == Poly([7])


class TestVanishing:
    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_vanishes_on_domain(self, size):
        t = vanishing_poly(size)
        w = fr_root_of_unity(size)
        for q in range(size):
            assert t(pow(w, q, R)) == 0

    def test_nonzero_off_domain(self):
        t = vanishing_poly(4)
        assert t(7) == (pow(7, 4, R) - 1) % R


class TestLagrangeCoeffsAt:
    @pytest.mark.parametrize("size", [2, 4, 16])
    def test_matches_direct_interpolation(self, size):
        w = fr_root_of_unity(size)
        point = 987654321
        coeffs = lagrange_coeffs_at(size, w, point)
        domain = [pow(w, q, R) for q in range(size)]
        for q in range(size):
            ys = [1 if i == q else 0 for i in range(size)]
            expected = lagrange_interpolate(domain, ys)(point)
            assert coeffs[q] == expected

    def test_point_on_domain_gives_indicator(self):
        size = 8
        w = fr_root_of_unity(size)
        coeffs = lagrange_coeffs_at(size, w, pow(w, 3, R))
        assert coeffs[3] == 1
        assert all(c == 0 for i, c in enumerate(coeffs) if i != 3)

    def test_partition_of_unity(self):
        size = 8
        w = fr_root_of_unity(size)
        coeffs = lagrange_coeffs_at(size, w, 424242)
        assert sum(coeffs) % R == 1
