"""All six matmul circuit strategies: satisfaction, soundness probes, and
the constraint/variable accounting the paper claims."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crpc import theory_counts
from repro.field.prime_field import BN254_FR_MODULUS
from repro.gadgets.matmul import STRATEGIES, MatmulCircuit

R = BN254_FR_MODULUS

shapes = st.tuples(
    st.integers(1, 4), st.integers(1, 5), st.integers(1, 4)
)


def rand_mats(a, n, b, seed=0, lo=0, hi=100):
    rng = random.Random(seed)
    x = [[rng.randrange(lo, hi) for _ in range(n)] for _ in range(a)]
    w = [[rng.randrange(lo, hi) for _ in range(b)] for _ in range(n)]
    return x, w


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestStrategyCorrectness:
    def test_satisfied_on_random_input(self, strategy):
        mc = MatmulCircuit(3, 4, 2, strategy)
        x, w = rand_mats(3, 4, 2, seed=1)
        z = mc.packing_point()
        mc.assign(x, w, z)
        assert mc.cs.is_satisfied(z), mc.cs.first_unsatisfied(z)

    def test_output_matches_reference(self, strategy):
        mc = MatmulCircuit(2, 3, 2, strategy)
        x, w = rand_mats(2, 3, 2, seed=2)
        y = mc.assign(x, w)
        for i in range(2):
            for j in range(2):
                ref = sum(x[i][k] * w[k][j] for k in range(3)) % R
                assert y[i][j] == ref

    def test_tampered_output_rejected(self, strategy):
        mc = MatmulCircuit(3, 4, 2, strategy)
        x, w = rand_mats(3, 4, 2, seed=3)
        z = mc.packing_point()
        y = mc.assign(x, w, z)
        mc.cs.set_value(mc.y_wires[1][1], (y[1][1] + 1) % R)
        assert not mc.cs.is_satisfied(z)

    def test_tampered_weight_rejected(self, strategy):
        mc = MatmulCircuit(2, 3, 2, strategy)
        x, w = rand_mats(2, 3, 2, seed=4)
        z = mc.packing_point()
        mc.assign(x, w, z)
        mc.cs.set_value(mc.w_wires[0][0], (w[0][0] + 1) % R)
        assert not mc.cs.is_satisfied(z)

    def test_identity_matrix(self, strategy):
        n = 3
        mc = MatmulCircuit(n, n, n, strategy)
        eye = [[1 if i == j else 0 for j in range(n)] for i in range(n)]
        x, _ = rand_mats(n, n, n, seed=5)
        y = mc.assign(x, eye)
        z = mc.packing_point()
        assert mc.cs.is_satisfied(z)
        assert y == [[v % R for v in row] for row in x]

    def test_rectangular_shapes(self, strategy):
        for a, n, b in [(1, 1, 1), (1, 4, 2), (4, 2, 1), (2, 5, 3)]:
            mc = MatmulCircuit(a, n, b, strategy)
            x, w = rand_mats(a, n, b, seed=a * 100 + n * 10 + b)
            mc.assign(x, w)
            assert mc.cs.is_satisfied(mc.packing_point()), (strategy, a, n, b)


@pytest.mark.parametrize("strategy", ["vanilla", "vanilla_psq", "crpc",
                                      "crpc_psq"])
class TestSignedInputs:
    def test_negative_values(self, strategy):
        mc = MatmulCircuit(2, 3, 2, strategy)
        x, w = rand_mats(2, 3, 2, seed=6, lo=-50, hi=50)
        y = mc.assign(x, w)
        z = mc.packing_point()
        assert mc.cs.is_satisfied(z)
        for i in range(2):
            for j in range(2):
                ref = sum(x[i][k] * w[k][j] for k in range(3)) % R
                assert y[i][j] == ref


class TestConstraintAccounting:
    """The paper's headline counts: CRPC n constraints, PSQ a*n left wires."""

    @given(shapes)
    @settings(max_examples=10)
    def test_crpc_psq_has_n_constraints(self, shape):
        a, n, b = shape
        mc = MatmulCircuit(a, n, b, "crpc_psq")
        assert len(mc.cs.constraints) == n

    @given(shapes)
    @settings(max_examples=10)
    def test_vanilla_has_abn_plus_ab_constraints(self, shape):
        a, n, b = shape
        mc = MatmulCircuit(a, n, b, "vanilla")
        assert len(mc.cs.constraints) == a * b * n + a * b

    @given(shapes)
    @settings(max_examples=10)
    def test_psq_left_wires_are_an(self, shape):
        a, n, b = shape
        stats = MatmulCircuit(a, n, b, "crpc_psq").cs.stats()
        assert stats.a_wires == a * n
        assert stats.a_terms == a * n

    def test_theory_matches_builder_for_all_strategies(self):
        for strategy in STRATEGIES:
            for a, n, b in [(2, 3, 2), (3, 4, 2), (2, 2, 2)]:
                mc = MatmulCircuit(a, n, b, strategy)
                th = theory_counts(a, n, b, strategy)
                stats = mc.cs.stats()
                assert stats.num_constraints == th.constraints, strategy
                # +1: theory excludes the constant-one wire.
                assert stats.num_wires == th.variables + 1, strategy

    def test_paper_fig4_example(self):
        """Fig. 4: [3,2]x[2,2] has 12 multiplications vanilla, 2 with CRPC."""
        vanilla = MatmulCircuit(3, 2, 2, "vanilla")
        product_constraints = [
            c for c in vanilla.cs.constraints if c.label.startswith("prod")
        ]
        assert len(product_constraints) == 12
        crpc = MatmulCircuit(3, 2, 2, "crpc_psq")
        assert len(crpc.cs.constraints) == 2

    def test_fig5_left_wire_reduction(self):
        """Fig. 5: a 1x3 dot product uses 6 left wires vanilla, 3 with PSQ."""
        vanilla = MatmulCircuit(1, 3, 1, "vanilla").cs.stats()
        psq = MatmulCircuit(1, 3, 1, "vanilla_psq").cs.stats()
        assert vanilla.a_wires == 6
        assert psq.a_wires == 3

    def test_packing_degrees(self):
        mc = MatmulCircuit(3, 4, 2, "crpc_psq")
        # max degree is (a-1)*b + (b-1) from the packed Y.
        assert mc.cs.max_z_degree() == (3 - 1) * 2 + (2 - 1)
        assert MatmulCircuit(3, 4, 2, "vanilla").cs.max_z_degree() == 0


class TestCircuitIdentity:
    def test_circuit_id_depends_on_shape_and_strategy(self):
        a = MatmulCircuit(2, 3, 2, "crpc_psq")
        b = MatmulCircuit(2, 3, 2, "vanilla")
        c = MatmulCircuit(2, 4, 2, "crpc_psq")
        assert a.circuit_id() != b.circuit_id()
        assert a.circuit_id() != c.circuit_id()

    def test_packing_point_extra_entropy(self):
        mc = MatmulCircuit(2, 3, 2, "crpc_psq")
        assert mc.packing_point() != mc.packing_point(b"commitment")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            MatmulCircuit(2, 2, 2, "nope")

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            MatmulCircuit(0, 2, 2, "vanilla")


class TestCrpcSoundnessAtRandomZ:
    def test_wrong_product_caught_whp(self):
        """A corrupted product that satisfies the packed identity at one z
        must fail at the circuit's own packing point (Schwartz-Zippel)."""
        a, n, b = 2, 2, 2
        mc = MatmulCircuit(a, n, b, "crpc_psq")
        x, w = rand_mats(a, n, b, seed=9)
        z = mc.packing_point()
        y = mc.assign(x, w, z)
        # Corrupt two outputs so their packed sum at z=1 is unchanged
        # (classic attack against a *fixed* packing point of 1).
        mc.cs.set_value(mc.y_wires[0][0], (y[0][0] + 1) % R)
        mc.cs.set_value(mc.y_wires[0][1], (y[0][1] - 1) % R)
        assert not mc.cs.is_satisfied(z)  # random z catches it
        # ... while z=1 packing would have been fooled on the final
        # constraint's Y side (demonstrating why z must be random).
