"""Remote proving fleet: frame protocol, registry, and executor.

Three layers of coverage:

* **Frames** — ``encode_frame``/``recv_frame`` over socketpairs: round
  trips for every kind, clean-EOF vs mid-frame-EOF discipline, and the
  hostile-prefix guarantees (bad magic / unknown kind / oversize length
  raise *before* any payload byte is read).
* **Registry** — round-robin over the healthy set, dead-marking,
  ``WorkerUnavailable`` on an empty or fully-dead fleet, PING/PONG
  revival against real loopback workers.
* **The executor through the service** — loopback fleets must produce
  the same results as the process tier (byte-identical for Groth16 under
  a pinned worker rng seed and a shared keystore root), survive a worker
  dying mid-batch with zero lost or duplicated jobs, distribute keys to
  diskless workers on demand, and degrade remote → process when the
  whole fleet is unreachable.
"""

import os
import socket
import struct
import subprocess
import time

import pytest
from _matutil import rand_mats

from repro import serialize
from repro.core import (
    CircuitRegistry,
    GroupChunkPolicy,
    KeyStore,
    ProvingService,
    RetryPolicy,
    WorkerRegistry,
    WorkerUnavailable,
)
from repro.core import remote
from repro.core.remote import (
    FRAME_KINDS,
    JOBS,
    KEY_PUSH,
    MAGIC,
    MAX_FRAME,
    PING,
    PONG,
    RESULTS,
    RemoteProvingExecutor,
    encode_frame,
    parse_worker_addr,
    recv_frame,
    send_frame,
)
from repro.core.remote_worker import launch_loopback_workers, stop_workers

FAST = RetryPolicy(
    max_attempts=3,
    backoff_base_seconds=0.001,
    lease_floor_seconds=5.0,
    lease_multiplier=40.0,
)


def make_service(tmp_path, executor, **kwargs):
    registry = CircuitRegistry()
    keystore = KeyStore(root=str(tmp_path / "keys"), registry=registry)
    kwargs.setdefault("retry_policy", FAST)
    return ProvingService(
        workers=2,
        registry=registry,
        keystore=keystore,
        executor=executor,
        chunk_policy=GroupChunkPolicy(
            workers=2, min_dispatch_seconds=0.0, target_chunk_seconds=0.0001
        ),
        **kwargs,
    )


def submit_jobs(svc, n=6, backend="spartan", shape=(3, 4, 2), seed=7):
    ids = []
    for i in range(n):
        x, w = rand_mats(*shape, seed=seed + i)
        ids.append(svc.submit(x, w, strategy="crpc_psq", backend=backend))
    return ids


def free_port():
    """A port that was just free — nothing listens on it afterwards."""
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


# -- frame protocol ---------------------------------------------------------------


class TestFrameCodec:
    def pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    @pytest.mark.parametrize("kind", FRAME_KINDS)
    def test_roundtrip_every_kind(self, kind):
        a, b = self.pair()
        with a, b:
            payload = bytes([kind]) * 37
            send_frame(a, kind, payload)
            assert recv_frame(b) == (kind, payload)

    def test_empty_payload_roundtrip(self):
        a, b = self.pair()
        with a, b:
            send_frame(a, PING)
            assert recv_frame(b) == (PING, b"")

    def test_clean_eof_at_boundary_is_none(self):
        a, b = self.pair()
        with b:
            send_frame(a, PING)
            a.close()
            assert recv_frame(b) == (PING, b"")
            assert recv_frame(b) is None  # peer hung up between frames

    @pytest.mark.parametrize("cut", [1, 4, 8])
    def test_eof_mid_header_raises(self, cut):
        a, b = self.pair()
        frame = encode_frame(JOBS, b"payload-bytes")
        with b:
            a.sendall(frame[:cut])
            a.close()
            with pytest.raises(ConnectionError):
                recv_frame(b)

    def test_eof_mid_payload_raises(self):
        a, b = self.pair()
        frame = encode_frame(RESULTS, b"x" * 100)
        with b:
            a.sendall(frame[:-40])
            a.close()
            with pytest.raises(ConnectionError):
                recv_frame(b)

    def test_bad_magic_rejected_at_offset_zero(self):
        a, b = self.pair()
        frame = bytearray(encode_frame(JOBS, b"hi"))
        frame[:4] = b"EVIL"
        with a, b:
            a.sendall(bytes(frame))
            with pytest.raises(serialize.SerializationError) as ei:
                recv_frame(b)
            assert ei.value.offset == 0

    def test_unknown_kind_rejected(self):
        a, b = self.pair()
        with a, b:
            a.sendall(MAGIC + bytes([200]) + struct.pack(">I", 2) + b"hi")
            with pytest.raises(serialize.SerializationError) as ei:
                recv_frame(b)
            assert ei.value.offset == 4

    def test_oversize_length_rejected_before_payload_read(self):
        """A hostile length prefix must raise from the 9 header bytes
        alone — were the implementation to wait for the declared payload,
        this would hang until the socket timeout instead."""
        a, b = self.pair()
        with a, b:
            a.sendall(MAGIC + bytes([JOBS]) + struct.pack(">I", MAX_FRAME + 1))
            t0 = time.monotonic()
            with pytest.raises(serialize.SerializationError) as ei:
                recv_frame(b)
            assert time.monotonic() - t0 < 1.0
            assert "MAX_FRAME" in str(ei.value)

    def test_encode_rejects_oversize_and_unknown(self):
        with pytest.raises(serialize.SerializationError):
            encode_frame(99, b"")
        big = bytearray(MAX_FRAME + 1)
        with pytest.raises(serialize.SerializationError):
            encode_frame(JOBS, bytes(big))

    def test_parse_worker_addr(self):
        assert parse_worker_addr("10.0.0.7:7841") == ("10.0.0.7", 7841)
        assert parse_worker_addr(("host", "80")) == ("host", 80)
        for bad in ("no-port", ":123", "host:", "host:abc"):
            with pytest.raises(ValueError):
                parse_worker_addr(bad)


# -- registry ---------------------------------------------------------------------


class TestWorkerRegistry:
    def test_round_robin_skips_dead(self):
        reg = WorkerRegistry(["h1:1", "h2:2", "h3:3"])
        seen = [reg.next_worker() for _ in range(3)]
        assert seen == [("h1", 1), ("h2", 2), ("h3", 3)]
        reg.mark_dead(("h2", 2))
        assert reg.live_count() == 2
        seen = {reg.next_worker() for _ in range(4)}
        assert ("h2", 2) not in seen

    def test_empty_or_fully_dead_fleet_raises_typed(self):
        with pytest.raises(WorkerUnavailable):
            WorkerRegistry([]).next_worker()
        reg = WorkerRegistry(["h1:1"])
        reg.mark_dead(("h1", 1))
        with pytest.raises(WorkerUnavailable):
            reg.next_worker()

    def test_ping_marks_unreachable_dead_and_live_alive(self):
        addrs, procs = launch_loopback_workers(1)
        try:
            dead = ("127.0.0.1", free_port())
            reg = WorkerRegistry([addrs[0], dead], connect_timeout=2.0)
            assert reg.ping(dead) is None
            stats = reg.ping(parse_worker_addr(addrs[0]))
            assert stats is not None and "pid" in stats
            assert reg.check_now() == 1
            live = reg.healthy()
            assert [w.addr for w in live] == [parse_worker_addr(addrs[0])]
        finally:
            stop_workers(procs)


# -- executor through the service -------------------------------------------------


class TestRemoteService:
    def test_spartan_batch_serves_and_verifies_remotely(self, tmp_path):
        addrs, procs = launch_loopback_workers(2)
        svc = make_service(tmp_path, "remote", remote_workers=addrs)
        try:
            ids = submit_jobs(svc, n=6)
            report = svc.run(verify=True)
            assert report.verified is True
            assert sorted(r.job_id for r in report.results) == sorted(ids)
            ((key, placement),) = report.placements.items()
            assert placement == "remote"
        finally:
            svc.close()
            stop_workers(procs)

    def test_groth16_byte_identical_to_process_tier(self, tmp_path, monkeypatch):
        """The acceptance bar: executor="remote" and executor="process"
        produce byte-identical bundles on the same job set — same keypair
        (shared keystore root), same per-job proof randomness (pinned
        worker rng seed, derived per job id so chunking cannot matter)."""
        monkeypatch.setenv("REPRO_WORKER_RNG_SEED", "acceptance-8")
        jobs = [rand_mats(2, 3, 2, seed=s) for s in range(4)]

        svc = make_service(tmp_path, "process")
        try:
            for x, w in jobs:
                svc.submit(x, w, strategy="crpc_psq", backend="groth16")
            process_report = svc.run(verify=True)
        finally:
            svc.close()
        assert process_report.verified is True
        assert all(p == "process" for p in process_report.placements.values())

        # Diskless workers launched *after* the seed is in the env; the
        # keypair reaches them over the wire via KEY_REQUEST/KEY_PUSH.
        addrs, procs = launch_loopback_workers(2)
        svc = make_service(tmp_path, "remote", remote_workers=addrs)
        try:
            for x, w in jobs:
                svc.submit(x, w, strategy="crpc_psq", backend="groth16")
            remote_report = svc.run(verify=True)
        finally:
            svc.close()
            stop_workers(procs)
        assert remote_report.verified is True
        assert all(p == "remote" for p in remote_report.placements.values())

        by_id = lambda rep: {r.job_id: r.bundle_bytes for r in rep.results}
        assert by_id(remote_report) == by_id(process_report)

    def test_dead_worker_redispatches_zero_lost_zero_duplicated(self, tmp_path):
        """Kill one of two workers before dispatch: every chunk routed to
        the corpse must come back typed, re-dispatch to the survivor, and
        the batch must end with exactly one proof per job."""
        addrs, procs = launch_loopback_workers(2)
        procs[0].kill()
        procs[0].wait(timeout=10)
        svc = make_service(tmp_path, "remote", remote_workers=addrs)
        try:
            ids = submit_jobs(svc, n=6)
            report = svc.run(verify=True)
            assert report.verified is True
            assert sorted(r.job_id for r in report.results) == sorted(ids)
            assert len({r.job_id for r in report.results}) == len(ids)
            assert not report.errors and not report.quarantined()
            # the corpse is now shunned...
            assert svc._remote.registry.live_count() == 1
            # ...and the casualty was charged to the fleet ladder
            assert svc._remote.breakages >= 1
        finally:
            svc.close()
            stop_workers(procs)

    def test_key_distribution_to_diskless_workers(self, tmp_path):
        """Groth16 on a fleet with no keystore: workers must adopt the
        dispatcher's keypair over the wire (observable in PONG stats),
        and keep it cached across batches."""
        addrs, procs = launch_loopback_workers(2)
        svc = make_service(tmp_path, "remote", remote_workers=addrs)
        try:
            submit_jobs(svc, n=4, backend="groth16", shape=(2, 2, 2))
            report = svc.run(verify=True)
            assert report.verified is True
            reg = svc._remote.registry

            def adopted():
                total = 0
                for addr in addrs:
                    stats = reg.ping(parse_worker_addr(addr)) or {}
                    total += stats.get("keys_adopted", 0)
                return total

            first = adopted()
            assert first >= 1  # at least one worker pulled the key
            submit_jobs(svc, n=4, backend="groth16", shape=(2, 2, 2), seed=99)
            report = svc.run(verify=True)
            assert report.verified is True
            assert adopted() == first  # cached: no re-adoption
        finally:
            svc.close()
            stop_workers(procs)

    def test_unreachable_fleet_degrades_remote_to_process(self, tmp_path):
        """Every dispatch refused: chunks fall back inline (no job lost)
        and the executor steps down the ladder to the process tier."""
        fleet = [f"127.0.0.1:{free_port()}" for _ in range(2)]
        svc = make_service(
            tmp_path,
            "remote",
            remote_workers=fleet,
            retry_policy=RetryPolicy(
                max_attempts=2,
                backoff_base_seconds=0.001,
                lease_floor_seconds=5.0,
                max_pool_breakages=2,
            ),
        )
        try:
            ids = submit_jobs(svc, n=4)
            report = svc.run(verify=True)
            assert report.verified is True  # inline fallback served them
            assert sorted(r.job_id for r in report.results) == sorted(ids)
            assert any("remote->inline" in f for f in report.fallbacks)
            assert any("remote->process" in f for f in report.fallbacks)
            assert svc.executor == "process"
            assert svc._remote is None
        finally:
            svc.close()

    def test_shutdown_workers_drains_owned_fleet(self, tmp_path):
        addrs, procs = launch_loopback_workers(1)
        try:
            ex = RemoteProvingExecutor(addrs)
            ex.shutdown_workers()
            ex.shutdown()
            assert procs[0].wait(timeout=10) == 0
        finally:
            stop_workers(procs)

    def test_remote_executor_requires_a_fleet(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_REMOTE_WORKERS", raising=False)
        with pytest.raises(ValueError, match="remote_workers"):
            make_service(tmp_path, "remote")
        monkeypatch.setenv("REPRO_REMOTE_WORKERS", f"127.0.0.1:{free_port()}")
        svc = make_service(tmp_path, "remote")  # env fleet accepted
        assert svc._remote is not None
        svc.close()


class TestAuthenticatedRemoteService:
    """The full serving path with ``REPRO_FLEET_TOKEN`` set fleet-wide —
    every session (dispatch, key distribution, heartbeats, teardown)
    runs over the HMAC handshake, and behavior is otherwise identical
    to the unauthenticated fleet.  CI's remote job exports the token, so
    the rest of this module runs authenticated there too."""

    def test_batch_serves_verified_over_authenticated_sessions(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(remote.TOKEN_ENV, "remote-suite-token")
        addrs, procs = launch_loopback_workers(2)
        svc = make_service(tmp_path, "remote", remote_workers=addrs)
        try:
            ids = submit_jobs(svc, n=6)
            report = svc.run(verify=True)
            assert report.verified is True
            assert sorted(r.job_id for r in report.results) == sorted(ids)
            assert all(p == "remote" for p in report.placements.values())
            assert not report.fallbacks

            # Second batch over the SAME service: the pool must reuse the
            # authenticated sockets rather than re-dialing per dispatch.
            submit_jobs(svc, n=6, seed=50)
            report = svc.run(verify=True)
            assert report.verified is True
            stats = svc._remote.transport_stats()
            assert stats["connects"] <= len(addrs)
            assert stats["reuses"] >= 1
            assert stats["dispatches"] > stats["connects"]
        finally:
            svc.close()
            stop_workers(procs)

    def test_wrong_token_client_is_rejected_typed(self, tmp_path, monkeypatch):
        monkeypatch.setenv(remote.TOKEN_ENV, "remote-suite-token")
        addrs, procs = launch_loopback_workers(1)
        try:
            with pytest.raises(remote.FleetAuthError) as excinfo:
                remote.open_connection(
                    parse_worker_addr(addrs[0]), 2.0, b"wrong-token"
                )
            assert excinfo.value.kind == "auth-failed"
            assert excinfo.value.retryable is False
        finally:
            stop_workers(procs)
