"""Static validation of the GitHub Actions workflows.

CI config only fails at push time, which is the most expensive place to
find out.  These tests parse ``.github/workflows/*.yml`` and check the
properties the PR relies on: the YAML is well-formed, every script a job
invokes exists in the repo, the PR workflow cancels superseded runs and
caches pip, the nightly workflow is actually scheduled, and the
acceptance-sized chaos soak lives in nightly — not on every PR push.
"""

import glob
import os
import re

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
WORKFLOW_DIR = os.path.join(REPO_ROOT, ".github", "workflows")

WORKFLOW_PATHS = sorted(glob.glob(os.path.join(WORKFLOW_DIR, "*.yml")))


def _load(path):
    with open(path) as fh:
        return yaml.safe_load(fh)


def _workflows():
    return {os.path.basename(p): _load(p) for p in WORKFLOW_PATHS}


def _run_steps(doc):
    for job_name, job in doc.get("jobs", {}).items():
        for step in job.get("steps", []):
            if "run" in step:
                yield job_name, step


def test_workflow_files_exist():
    names = {os.path.basename(p) for p in WORKFLOW_PATHS}
    assert {"ci.yml", "nightly.yml"} <= names


@pytest.mark.parametrize("path", WORKFLOW_PATHS,
                         ids=[os.path.basename(p) for p in WORKFLOW_PATHS])
def test_workflow_is_valid_yaml_with_jobs(path):
    doc = _load(path)
    assert isinstance(doc, dict)
    # PyYAML parses the bare `on:` key as boolean True.
    assert "on" in doc or True in doc
    assert doc.get("jobs"), f"{path} defines no jobs"
    for job_name, job in doc["jobs"].items():
        assert job.get("runs-on"), f"{job_name} has no runs-on"
        assert job.get("steps"), f"{job_name} has no steps"
        assert "timeout-minutes" in job, f"{job_name} has no timeout"


@pytest.mark.parametrize("path", WORKFLOW_PATHS,
                         ids=[os.path.basename(p) for p in WORKFLOW_PATHS])
def test_workflow_references_existing_files(path):
    """Every repo path a run step mentions must exist: benchmarks/*.py,
    tests/*.py, and the pip requirements file."""
    doc = _load(path)
    referenced = set()
    for _, step in _run_steps(doc):
        referenced.update(re.findall(
            r"(?:benchmarks|tests)/[\w.\-]+\.py", step["run"]))
        referenced.update(re.findall(
            r"\.github/[\w.\-/]+\.txt", step["run"]))
    for job in doc["jobs"].values():
        for step in job.get("steps", []):
            dep = (step.get("with") or {}).get("cache-dependency-path")
            if dep:
                referenced.add(dep)
    assert referenced, f"{path} references no repo scripts"
    missing = [r for r in referenced
               if not os.path.exists(os.path.join(REPO_ROOT, r))]
    assert not missing, f"{path} references missing files: {missing}"


def test_ci_cancels_superseded_runs_and_caches_pip():
    doc = _load(os.path.join(WORKFLOW_DIR, "ci.yml"))
    conc = doc.get("concurrency")
    assert conc and "ci-" in conc["group"]
    # PRs cancel in-progress; mainline runs are kept (the expression
    # guards on the ref).
    assert "refs/heads/main" in str(conc["cancel-in-progress"])

    for job_name, job in doc["jobs"].items():
        setup = [s for s in job["steps"]
                 if "setup-python" in str(s.get("uses", ""))]
        assert setup, f"{job_name} has no setup-python step"
        with_ = setup[0].get("with") or {}
        assert with_.get("cache") == "pip", f"{job_name} not pip-cached"
        assert with_.get("cache-dependency-path"), job_name


def test_nightly_is_scheduled_and_dispatchable():
    doc = _load(os.path.join(WORKFLOW_DIR, "nightly.yml"))
    on = doc.get("on", doc.get(True))
    assert "schedule" in on and "workflow_dispatch" in on
    crons = [e["cron"] for e in on["schedule"]]
    assert crons and all(len(c.split()) == 5 for c in crons)

    jobs = doc["jobs"]
    assert "observatory" in jobs and "chaos-soak" in jobs

    obs_runs = "\n".join(
        step["run"] for name, step in _run_steps(doc)
        if name == "observatory")
    assert "bench_observatory.py --suite paper" in obs_runs
    assert "check_regression.py --service --history" in obs_runs
    assert "repro.bench.observatory" in obs_runs

    # The run store must survive between nights (cache restore + save)
    # and ship as an artifact.
    uses = [str(s.get("uses", "")) for s in jobs["observatory"]["steps"]]
    assert any("actions/cache/restore" in u for u in uses)
    assert any("actions/cache/save" in u for u in uses)
    assert any("upload-artifact" in u for u in uses)


def test_chaos_soak_runs_nightly_not_on_prs():
    ci = _load(os.path.join(WORKFLOW_DIR, "ci.yml"))
    nightly = _load(os.path.join(WORKFLOW_DIR, "nightly.yml"))

    def soak_envs(doc):
        out = []
        for job in doc["jobs"].values():
            env = dict(job.get("env") or {})
            for step in job["steps"]:
                env.update(step.get("env") or {})
            out.append(env)
        return out

    assert all("REPRO_CHAOS_SOAK" not in env for env in soak_envs(ci))
    assert any(env.get("REPRO_CHAOS_SOAK") == "1"
               for env in soak_envs(nightly))
    # Both tiers exercise the same suite: smoke on PRs, soak nightly.
    assert any("tests/test_chaos.py" in step["run"]
               for _, step in _run_steps(ci))
    assert any("tests/test_chaos.py" in step["run"]
               for _, step in _run_steps(nightly))
