"""Equivalence property tests for the prover hot paths.

Every fast path introduced by the hot-path overhaul is cross-checked here
against the corresponding naive implementation:

* fixed-base window tables  == generic ``multiply`` / naive point sums,
* batch-affine Pippenger    == naive ``g1_sum``-of-multiples MSM,
* fast sumcheck kernels     == the generic ``combine``-callback prover
  (byte-identical proofs, including edge sizes n=2 and degree=1).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curve.bn254 import (
    CURVE_ORDER,
    add,
    batch_affine_pairwise_add,
    batch_affine_reduce,
    batch_affine_sum,
    g1_generator,
    g1_sum,
    multiply,
    neg,
)
from repro.curve.fixed_base import (
    FixedBaseMSM,
    FixedBaseTable,
    clear_fixed_base_cache,
    fixed_base_msm,
)
from repro.curve.msm import _msm_jacobian, msm, signed_digits
from repro.field.prime_field import BN254_FR_MODULUS
from repro.spartan.sumcheck import (
    SumcheckProof,
    sumcheck_prove,
    sumcheck_prove_reference,
    sumcheck_verify,
)
from repro.spartan.transcript import Transcript

R = BN254_FR_MODULUS
G1 = g1_generator()

scalars = st.integers(min_value=0, max_value=CURVE_ORDER - 1)
elems = st.integers(min_value=0, max_value=R - 1)

_rng = random.Random(0xD15C0)
_POOL = [multiply(G1, _rng.randrange(1, CURVE_ORDER)) for _ in range(24)]


def _points(n):
    return [_POOL[i % len(_POOL)] for i in range(n)]


def _naive_msm(points, scs):
    """The definitionally-correct MSM: g1_sum of individual multiplies."""
    acc = None
    for pt, sc in zip(points, scs):
        acc = add(acc, multiply(pt, sc))
    return acc


class TestBatchAffine:
    def test_reduce_matches_sequential_sums(self):
        groups = [
            [],
            [_POOL[0]],
            _POOL[:2],
            _POOL[:7],
            [_POOL[3]] * 5,  # repeated point forces the doubling branch
        ]
        expect = [None] + [
            _naive_msm(g, [1] * len(g)) for g in groups[1:]
        ]
        assert batch_affine_reduce(groups) == expect

    def test_reduce_cancellation(self):
        p = _POOL[0]
        assert batch_affine_reduce([[p, neg(p)]]) == [None]
        assert batch_affine_reduce([[p, neg(p)] * 4]) == [None]
        assert batch_affine_reduce([[p, neg(p), p]]) == [p]

    def test_pairwise_add(self):
        p, q = _POOL[0], _POOL[1]
        got = batch_affine_pairwise_add(
            [p, None, p, neg(p), None], [q, q, p, p, None]
        )
        assert got == [add(p, q), q, multiply(p, 2), None, None]

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=10, deadline=None)
    def test_batch_sum_matches_g1_sum(self, n):
        pts = _points(n)
        assert batch_affine_sum(pts) == _naive_msm(pts, [1] * n)

    def test_g1_sum_large_path_matches_small_path(self):
        # n = 40 goes through batch-affine, n < 16 through the Jacobian loop.
        pts = _points(40)
        expect = _naive_msm(pts, [1] * 40)
        assert g1_sum(pts) == expect
        assert g1_sum(pts + [None, None]) == expect


class TestSignedDigits:
    @given(scalars, st.integers(min_value=2, max_value=12))
    @settings(max_examples=50, deadline=None)
    def test_recoding_roundtrip(self, sc, c):
        num_windows = (CURVE_ORDER.bit_length() + c) // c + 1
        digits = signed_digits(sc, c, num_windows)
        half = 1 << (c - 1)
        assert all(-half < d <= half for d in digits)
        assert sum(d << (i * c) for i, d in enumerate(digits)) == sc


class TestMsmEquivalence:
    @given(st.lists(scalars, min_size=1, max_size=40))
    @settings(max_examples=15, deadline=None)
    def test_msm_matches_naive(self, scs):
        pts = _points(len(scs))
        assert msm(pts, scs) == _naive_msm(pts, scs)

    def test_msm_matches_jacobian_reference(self):
        rng = random.Random(7)
        pts = _points(50)
        scs = [rng.randrange(CURVE_ORDER) for _ in range(50)]
        assert msm(pts, scs) == _msm_jacobian(pts, scs)

    def test_msm_equal_scalars_and_duplicates(self):
        # Every point lands in the same bucket: worst case for the batched
        # scheduler (exercises the doubling branch heavily).
        pts = [_POOL[0]] * 33
        assert msm(pts, [5] * 33) == multiply(_POOL[0], 5 * 33)

    def test_msm_skips_none_and_zero(self):
        pts = [_POOL[0], None, _POOL[1]] * 8
        scs = [3, 9, 0] * 8
        assert msm(pts, scs) == multiply(_POOL[0], 24)


class TestFixedBase:
    @given(scalars)
    @settings(max_examples=25, deadline=None)
    def test_table_mul_matches_multiply(self, sc):
        tab = FixedBaseTable(_POOL[2])
        assert tab.mul(sc) == multiply(_POOL[2], sc)

    def test_table_mul_edges(self):
        tab = FixedBaseTable(_POOL[2])
        for sc in (0, 1, 2, CURVE_ORDER - 1, CURVE_ORDER, CURVE_ORDER + 5):
            assert tab.mul(sc) == multiply(_POOL[2], sc)
        assert FixedBaseTable(None).mul(7) is None

    @given(st.lists(scalars, min_size=1, max_size=24))
    @settings(max_examples=15, deadline=None)
    def test_fixed_base_msm_matches_multiply(self, scs):
        fb = FixedBaseMSM(_POOL[: len(scs)])
        assert fb.msm(scs) == _naive_msm(_POOL, scs)

    def test_fixed_base_extend_and_prefix(self):
        fb = FixedBaseMSM(_POOL[:4])
        fb.extend(_POOL[4:10])
        rng = random.Random(11)
        scs = [rng.randrange(CURVE_ORDER) for _ in range(10)]
        assert fb.msm(scs) == _naive_msm(_POOL[:10], scs)
        assert fb.msm(scs[:3]) == _naive_msm(_POOL[:3], scs[:3])
        with pytest.raises(ValueError):
            fb.msm([1] * 11)

    def test_fixed_base_msm_many(self):
        fb = FixedBaseMSM(_POOL[:8])
        rng = random.Random(12)
        rows = [
            [rng.randrange(CURVE_ORDER) for _ in range(8)] for _ in range(5)
        ]
        rows.append([0] * 8)  # all-zero row -> infinity
        got = fb.msm_many(rows)
        assert got == [_naive_msm(_POOL[:8], r) for r in rows]

    def test_cache_promotes_on_reuse(self):
        clear_fixed_base_cache()
        pts = _POOL[:6]
        rng = random.Random(13)
        for trial in range(3):
            scs = [rng.randrange(CURVE_ORDER) for _ in range(6)]
            assert fixed_base_msm("test-label", pts, scs) == _naive_msm(
                pts, scs
            )
        # Rebinding the label to different points must reset, not collide.
        other = _POOL[6:12]
        scs = [rng.randrange(CURVE_ORDER) for _ in range(6)]
        assert fixed_base_msm("test-label", other, scs) == _naive_msm(
            other, scs
        )
        clear_fixed_base_cache()


def _product_combine(vals):
    acc = 1
    for v in vals:
        acc = acc * v % R
    return acc


class TestSumcheckFastEquivalence:
    @given(st.lists(elems, min_size=2, max_size=2))
    @settings(max_examples=10, deadline=None)
    def test_generic_fast_matches_reference_n2_deg1(self, table):
        # Edge case from the issue: n=2 (single round) and degree=1.
        claim = sum(table) % R
        p1, r1, f1 = sumcheck_prove(
            [list(table)], _product_combine, 1, claim, Transcript(), b"t"
        )
        p2, r2, f2 = sumcheck_prove_reference(
            [list(table)], _product_combine, 1, claim, Transcript(), b"t"
        )
        assert p1.round_polys == p2.round_polys
        assert (r1, f1) == (r2, f2)

    @pytest.mark.parametrize("n", [2, 8, 64])
    @pytest.mark.parametrize(
        "kernel,ntables,degree",
        [("prod2", 2, 2), ("prod3", 3, 3), ("eq_abc", 4, 3)],
    )
    def test_kernels_match_reference(self, n, kernel, ntables, degree):
        rng = random.Random(hash((n, kernel)) & 0xFFFF)
        tabs = [[rng.randrange(R) for _ in range(n)] for _ in range(ntables)]
        if kernel == "eq_abc":
            combine = lambda v: v[0] * ((v[1] * v[2] - v[3]) % R) % R  # noqa: E731
        else:
            combine = _product_combine
        claim = sum(
            combine([t[i] for t in tabs]) for i in range(n)
        ) % R
        p1, r1, f1 = sumcheck_prove(
            [list(t) for t in tabs], combine, degree, claim, Transcript(),
            b"t", kernel=kernel,
        )
        p2, r2, f2 = sumcheck_prove_reference(
            [list(t) for t in tabs], combine, degree, claim, Transcript(), b"t"
        )
        assert p1.round_polys == p2.round_polys
        assert (r1, f1) == (r2, f2)
        ok, final, _ = sumcheck_verify(
            p1, degree, claim, max(1, n.bit_length() - 1), Transcript(), b"t"
        )
        assert ok
        assert final == combine(f1)

    @given(st.lists(elems, min_size=8, max_size=8))
    @settings(max_examples=10, deadline=None)
    def test_generic_fast_matches_reference_deg3(self, table):
        rng = random.Random(21)
        tabs = [list(table)] + [
            [rng.randrange(R) for _ in range(8)] for _ in range(2)
        ]
        claim = sum(
            _product_combine([t[i] for t in tabs]) for i in range(8)
        ) % R
        p1, _, _ = sumcheck_prove(
            [list(t) for t in tabs], _product_combine, 3, claim,
            Transcript(), b"t",
        )
        p2, _, _ = sumcheck_prove_reference(
            [list(t) for t in tabs], _product_combine, 3, claim,
            Transcript(), b"t",
        )
        assert p1.round_polys == p2.round_polys

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            sumcheck_prove(
                [[1, 2]], _product_combine, 1, 3, Transcript(), b"t",
                kernel="prod2",
            )
        with pytest.raises(ValueError):
            sumcheck_prove(
                [[1, 2], [3, 4]], _product_combine, 2, 11, Transcript(),
                b"t", kernel="nope",
            )

    def test_prover_does_not_mutate_caller_tables(self):
        a = [1, 2, 3, 4]
        b = [5, 6, 7, 8]
        sumcheck_prove(
            [a, b], _product_combine, 2, 0, Transcript(), b"t",
            kernel="prod2",
        )
        assert a == [1, 2, 3, 4] and b == [5, 6, 7, 8]


class TestSumcheckVerifierHardening:
    def test_degree_zero_proof_rejected_not_error(self):
        ok, final, r = sumcheck_verify(
            SumcheckProof(round_polys=[[5]]), 0, 5, 1, Transcript(), b"t"
        )
        assert not ok

    def test_truncated_and_overlong_proofs_fail_fast(self):
        a = [1, 2, 3, 4, 5, 6, 7, 8]
        b = [8, 7, 6, 5, 4, 3, 2, 1]
        claim = sum(x * y for x, y in zip(a, b)) % R
        pf, _, _ = sumcheck_prove(
            [list(a), list(b)], _product_combine, 2, claim, Transcript(),
            b"t", kernel="prod2",
        )
        truncated = SumcheckProof(round_polys=pf.round_polys[:2])
        ok, _, r = sumcheck_verify(truncated, 2, claim, 3, Transcript(), b"t")
        assert not ok
        assert r == []  # failed before absorbing any rounds
        overlong = SumcheckProof(round_polys=pf.round_polys + [[0, 0, 0]])
        ok, _, _ = sumcheck_verify(overlong, 2, claim, 3, Transcript(), b"t")
        assert not ok
