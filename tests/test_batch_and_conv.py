"""Groth16 batch verification and the convolution circuits."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.groth16 as g16
from repro.field.prime_field import BN254_FR_MODULUS
from repro.gadgets.convolution import (
    CONV_STRATEGIES,
    Conv1dCircuit,
    conv1d_reference,
)
from repro.groth16.batch import batch_verify
from repro.r1cs import LC, ConstraintSystem

R = BN254_FR_MODULUS


def square_circuit(x: int):
    cs = ConstraintSystem()
    xw = cs.alloc_public("x", x)
    yw = cs.alloc_public("y", x * x)
    cs.enforce(LC.from_wire(xw), LC.from_wire(xw), LC.from_wire(yw))
    return cs


@pytest.fixture(scope="module")
def batch_setup():
    rng = random.Random(9)
    cs0 = square_circuit(3)
    inst = cs0.specialize(1)
    kp = g16.setup(inst, rng=lambda: rng.getrandbits(256))
    proofs, statements = [], []
    for x in (3, 5, 11):
        cs = square_circuit(x)
        proofs.append(g16.prove(kp.pk, inst, cs.assignment()))
        statements.append(cs.public_inputs())
    return kp, inst, statements, proofs


class TestBatchVerify:
    def test_accepts_valid_batch(self, batch_setup):
        kp, _, statements, proofs = batch_setup
        assert batch_verify(kp.vk, statements, proofs)

    def test_rejects_one_bad_statement(self, batch_setup):
        kp, _, statements, proofs = batch_setup
        bad = [list(s) for s in statements]
        bad[1][1] = (bad[1][1] + 1) % R
        assert not batch_verify(kp.vk, bad, proofs)

    def test_rejects_one_mangled_proof(self, batch_setup):
        from repro.curve.bn254 import multiply
        from repro.groth16.keys import Proof

        kp, _, statements, proofs = batch_setup
        mangled = list(proofs)
        p = mangled[2]
        mangled[2] = Proof(a=multiply(p.a, 2), b=p.b, c=p.c)
        assert not batch_verify(kp.vk, statements, mangled)

    def test_empty_batch(self, batch_setup):
        kp, *_ = batch_setup
        assert batch_verify(kp.vk, [], [])

    def test_length_mismatch(self, batch_setup):
        kp, _, statements, proofs = batch_setup
        with pytest.raises(ValueError):
            batch_verify(kp.vk, statements[:1], proofs)

    def test_swapped_statements_rejected(self, batch_setup):
        kp, _, statements, proofs = batch_setup
        assert not batch_verify(
            kp.vk, [statements[1], statements[0], statements[2]], proofs
        )


@pytest.mark.parametrize("strategy", CONV_STRATEGIES)
class TestConv1d:
    def test_satisfied(self, strategy):
        rng = random.Random(1)
        x = [rng.randrange(-20, 20) for _ in range(6)]
        w = [rng.randrange(-20, 20) for _ in range(3)]
        circ = Conv1dCircuit(6, 3, strategy)
        y = circ.assign(x, w)
        z = circ.packing_point()
        assert circ.cs.is_satisfied(z), circ.cs.first_unsatisfied(z)
        ref = conv1d_reference(x, w)
        assert y == [v % R for v in ref]

    def test_tamper_rejected(self, strategy):
        rng = random.Random(2)
        x = [rng.randrange(50) for _ in range(5)]
        w = [rng.randrange(50) for _ in range(4)]
        circ = Conv1dCircuit(5, 4, strategy)
        y = circ.assign(x, w)
        circ.cs.set_value(circ.y_wires[3], (y[3] + 1) % R)
        assert not circ.cs.is_satisfied(circ.packing_point())

    def test_single_element(self, strategy):
        circ = Conv1dCircuit(1, 1, strategy)
        y = circ.assign([7], [6])
        assert y == [42]
        assert circ.cs.is_satisfied(circ.packing_point())

    def test_length_validation(self, strategy):
        circ = Conv1dCircuit(3, 2, strategy)
        with pytest.raises(ValueError):
            circ.assign([1, 2], [3, 4])


class TestConvEncodingComparison:
    def test_packed_is_one_constraint(self):
        """vCNN's headline: a whole convolution = 1 polynomial mult."""
        vanilla = Conv1dCircuit(16, 8, "vanilla")
        packed = Conv1dCircuit(16, 8, "packed")
        assert len(packed.cs.constraints) == 1
        assert len(vanilla.cs.constraints) == 16 * 8 + (16 + 8 - 1)

    @given(
        st.lists(st.integers(-30, 30), min_size=2, max_size=8),
        st.lists(st.integers(-30, 30), min_size=1, max_size=4),
    )
    @settings(max_examples=10)
    def test_encodings_agree(self, x, w):
        a = Conv1dCircuit(len(x), len(w), "vanilla")
        b = Conv1dCircuit(len(x), len(w), "packed")
        assert a.assign(x, w) == b.assign(x, w)
        assert a.cs.is_satisfied(a.packing_point())
        assert b.cs.is_satisfied(b.packing_point())

    def test_packed_conv_proves_with_spartan(self):
        from repro.spartan import Transcript, prove, verify

        circ = Conv1dCircuit(8, 4, "packed")
        x = list(range(1, 9))
        w = [2, -1, 3, 1]
        circ.assign(x, w)
        z = circ.packing_point()
        inst = circ.cs.specialize(z)
        proof = prove(inst, circ.cs.assignment(), Transcript(b"conv"))
        assert verify(
            inst, circ.cs.public_inputs(), proof, Transcript(b"conv")
        )

    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            Conv1dCircuit(4, 2, "fft")

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            Conv1dCircuit(0, 2, "packed")
